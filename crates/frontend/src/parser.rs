use crate::ast::*;
use crate::error::FrontendError;
use crate::lexer::lex_recover;
use crate::report::SourceDiagnostic;
use crate::token::{Span, Spanned, Tok};

/// Parse a source text into a [`SourceFile`], failing on the first error.
///
/// This is the fail-fast wrapper around [`parse_recover`]: the first
/// accumulated diagnostic (lexical errors first, then syntax errors in
/// statement order) becomes the `Err`.
pub fn parse(src: &str) -> Result<SourceFile, FrontendError> {
    let (file, diags) = parse_recover(src);
    match diags.into_iter().next() {
        Some(d) => Err(d.error),
        None => Ok(file),
    }
}

/// Parse a source text, recovering from errors: a malformed statement is
/// reported as a span-carrying diagnostic, the parser resynchronizes at
/// the next statement boundary (line break), and parsing continues. The
/// returned [`SourceFile`] contains every statement that *did* parse, so
/// later phases can keep going too.
pub fn parse_recover(src: &str) -> (SourceFile, Vec<SourceDiagnostic>) {
    let (toks, mut diags) = lex_recover(src);
    let mut p = Parser { toks, pos: 0, last_err_span: None };
    let file = p.source_file(&mut diags);
    (file, diags)
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    /// Span of the most recent error produced by [`Parser::err`] — read
    /// back (taken) when a failed statement is turned into a diagnostic.
    last_err_span: Option<Span>,
}

/// The three optional expressions of a subscript triplet `l:u:s`.
type TripletParts = (Option<Expr>, Option<Expr>, Option<Expr>);

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        self.toks.get(self.pos + 1).map(|s| &s.tok).unwrap_or(&Tok::Eof)
    }

    fn line(&self) -> usize {
        self.toks[self.pos].span.line
    }

    fn cur_span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&mut self, what: impl Into<String>) -> Result<T, FrontendError> {
        self.last_err_span = Some(self.cur_span());
        Err(FrontendError::Parse { line: self.line(), what: what.into() })
    }

    /// Skip to the next statement boundary after a failed statement, so
    /// parsing can continue. Consumes at least one token unless already at
    /// end of input — guaranteeing progress for the recovery loop.
    fn resync(&mut self) {
        loop {
            match self.peek() {
                Tok::Newline => {
                    self.bump();
                    return;
                }
                Tok::Eof => return,
                _ => {
                    self.bump();
                }
            }
        }
    }

    fn expect(&mut self, t: Tok) -> Result<(), FrontendError> {
        if *self.peek() == t {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected `{t}`, found `{}`", self.peek()))
        }
    }

    fn expect_ident(&mut self) -> Result<String, FrontendError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found `{other}`")),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn end_stmt(&mut self) -> Result<(), FrontendError> {
        match self.peek() {
            Tok::Newline => {
                self.bump();
                Ok(())
            }
            Tok::Eof => Ok(()),
            other => self.err(format!("unexpected `{other}` at end of statement")),
        }
    }

    // -------------------------------------------------------------- units

    fn source_file(&mut self, diags: &mut Vec<SourceDiagnostic>) -> SourceFile {
        let mut main_stmts: Vec<SpannedStmt> = Vec::new();
        let mut main_name = "MAIN".to_string();
        let mut subroutines = Vec::new();
        let mut in_main = true;
        let mut current_sub: Option<Unit> = None;

        loop {
            match self.peek() {
                Tok::Eof => break,
                Tok::Newline => {
                    self.bump();
                    continue;
                }
                _ => {}
            }
            let line = self.line();
            let span = self.cur_span();
            let stmt = match self.statement() {
                Ok(s) => s,
                Err(e) => {
                    let at = self.last_err_span.take().unwrap_or(span);
                    diags.push(SourceDiagnostic::new(e, at));
                    self.resync();
                    continue;
                }
            };
            match stmt {
                Stmt::Program(name) if in_main => {
                    main_name = name;
                }
                Stmt::Subroutine { name, dummies } => {
                    if let Some(sub) = current_sub.take() {
                        subroutines.push(sub);
                    }
                    in_main = false;
                    current_sub =
                        Some(Unit { name, dummies, stmts: Vec::new() });
                }
                Stmt::End => {
                    if let Some(sub) = current_sub.take() {
                        subroutines.push(sub);
                    } else {
                        in_main = false;
                    }
                }
                s => {
                    if let Some(sub) = current_sub.as_mut() {
                        sub.stmts.push(SpannedStmt { stmt: s, line, span });
                    } else if in_main {
                        main_stmts.push(SpannedStmt { stmt: s, line, span });
                    } else {
                        diags.push(SourceDiagnostic::new(
                            FrontendError::Parse {
                                line,
                                what: "statement outside any program unit".into(),
                            },
                            span,
                        ));
                    }
                }
            }
        }
        if let Some(sub) = current_sub.take() {
            subroutines.push(sub);
        }
        SourceFile {
            main: Unit { name: main_name, dummies: Vec::new(), stmts: main_stmts },
            subroutines,
        }
    }

    // ---------------------------------------------------------- statements

    fn statement(&mut self) -> Result<Stmt, FrontendError> {
        if *self.peek() == Tok::Directive {
            self.bump();
            return self.directive();
        }
        let kw = match self.peek() {
            Tok::Ident(s) => s.clone(),
            other => return self.err(format!("expected statement, found `{other}`")),
        };
        match kw.as_str() {
            "PROGRAM" => {
                self.bump();
                let name = self.expect_ident()?;
                self.end_stmt()?;
                Ok(Stmt::Program(name))
            }
            "END" => {
                self.bump();
                // optional PROGRAM/SUBROUTINE [name]
                while matches!(self.peek(), Tok::Ident(_)) {
                    self.bump();
                }
                self.end_stmt()?;
                Ok(Stmt::End)
            }
            "PARAMETER" => {
                self.bump();
                self.expect(Tok::LParen)?;
                let mut pairs = Vec::new();
                loop {
                    let name = self.expect_ident()?;
                    self.expect(Tok::Equals)?;
                    let e = self.expr()?;
                    pairs.push((name, e));
                    if *self.peek() == Tok::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.expect(Tok::RParen)?;
                self.end_stmt()?;
                Ok(Stmt::Parameter(pairs))
            }
            "REAL" | "INTEGER" | "DOUBLE" | "LOGICAL" | "COMPLEX" => {
                self.declaration(kw)
            }
            "ALLOCATE" => {
                self.bump();
                self.expect(Tok::LParen)?;
                let mut allocs = Vec::new();
                loop {
                    let name = self.expect_ident()?;
                    self.expect(Tok::LParen)?;
                    let dims = self.dim_decl_list()?;
                    self.expect(Tok::RParen)?;
                    allocs.push((name, dims));
                    if *self.peek() == Tok::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.expect(Tok::RParen)?;
                self.end_stmt()?;
                Ok(Stmt::Allocate(allocs))
            }
            "DEALLOCATE" => {
                self.bump();
                self.expect(Tok::LParen)?;
                let names = self.name_list()?;
                self.expect(Tok::RParen)?;
                self.end_stmt()?;
                Ok(Stmt::Deallocate(names))
            }
            "READ" => {
                self.bump();
                // READ unit, names...  (unit may be an int or *)
                match self.peek() {
                    Tok::Int(_) | Tok::Star => {
                        self.bump();
                    }
                    _ => {}
                }
                if *self.peek() == Tok::Comma {
                    self.bump();
                }
                let names = self.name_list()?;
                self.end_stmt()?;
                Ok(Stmt::Read(names))
            }
            "CALL" => {
                self.bump();
                let name = self.expect_ident()?;
                let mut args = Vec::new();
                if *self.peek() == Tok::LParen {
                    self.bump();
                    if *self.peek() != Tok::RParen {
                        loop {
                            args.push(self.array_ref()?);
                            if *self.peek() == Tok::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen)?;
                }
                self.end_stmt()?;
                Ok(Stmt::Call { name, args })
            }
            "SUBROUTINE" => {
                self.bump();
                let name = self.expect_ident()?;
                let mut dummies = Vec::new();
                if *self.peek() == Tok::LParen {
                    self.bump();
                    if *self.peek() != Tok::RParen {
                        dummies = self.name_list()?;
                    }
                    self.expect(Tok::RParen)?;
                }
                self.end_stmt()?;
                Ok(Stmt::Subroutine { name, dummies })
            }
            "FORALL" => self.forall(),
            _ => self.array_assignment(),
        }
    }

    fn directive(&mut self) -> Result<Stmt, FrontendError> {
        let kw_span = self.cur_span();
        let kw = self.expect_ident()?;
        match kw.as_str() {
            "PROCESSORS" => {
                let mut ents = Vec::new();
                loop {
                    let name = self.expect_ident()?;
                    let dims = if *self.peek() == Tok::LParen {
                        self.bump();
                        let d = self.dim_decl_list()?;
                        self.expect(Tok::RParen)?;
                        Some(d)
                    } else {
                        None
                    };
                    ents.push(Entity { name, dims });
                    if *self.peek() == Tok::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.end_stmt()?;
                Ok(Stmt::Processors(ents))
            }
            "DISTRIBUTE" | "REDISTRIBUTE" => self.distribute(kw == "REDISTRIBUTE"),
            "ALIGN" | "REALIGN" => self.align(kw == "REALIGN"),
            "DYNAMIC" => {
                // optional ::
                if *self.peek() == Tok::DoubleColon {
                    self.bump();
                }
                let names = self.name_list()?;
                self.end_stmt()?;
                Ok(Stmt::Dynamic(names))
            }
            "TEMPLATE" => {
                self.last_err_span = Some(kw_span);
                Err(FrontendError::TemplateDirective { line: kw_span.line })
            }
            other => self.err(format!("unknown directive `{other}`")),
        }
    }

    /// `DISTRIBUTE A (fmts) [TO tgt]`
    /// `DISTRIBUTE (fmts) [TO tgt] :: A, B`
    /// `DISTRIBUTE A *` / `DISTRIBUTE A * (fmts) [TO tgt]`
    fn distribute(&mut self, redistribute: bool) -> Result<Stmt, FrontendError> {
        if *self.peek() == Tok::LParen {
            // prefix form: (fmts) [TO tgt] :: names
            self.bump();
            let formats = self.format_list()?;
            self.expect(Tok::RParen)?;
            let target = self.opt_target()?;
            self.expect(Tok::DoubleColon)?;
            let distributees = self.name_list()?;
            self.end_stmt()?;
            return Ok(Stmt::Distribute {
                redistribute,
                distributees,
                formats,
                target,
                inherit: InheritAst::None,
            });
        }
        let name = self.expect_ident()?;
        if *self.peek() == Tok::Star {
            self.bump();
            if *self.peek() == Tok::LParen {
                self.bump();
                let formats = self.format_list()?;
                self.expect(Tok::RParen)?;
                let target = self.opt_target()?;
                self.end_stmt()?;
                return Ok(Stmt::Distribute {
                    redistribute,
                    distributees: vec![name],
                    formats,
                    target,
                    inherit: InheritAst::InheritMatching,
                });
            }
            self.end_stmt()?;
            return Ok(Stmt::Distribute {
                redistribute,
                distributees: vec![name],
                formats: Vec::new(),
                target: None,
                inherit: InheritAst::Inherit,
            });
        }
        self.expect(Tok::LParen)?;
        let formats = self.format_list()?;
        self.expect(Tok::RParen)?;
        let target = self.opt_target()?;
        self.end_stmt()?;
        Ok(Stmt::Distribute {
            redistribute,
            distributees: vec![name],
            formats,
            target,
            inherit: InheritAst::None,
        })
    }

    fn opt_target(&mut self) -> Result<Option<TargetAst>, FrontendError> {
        if !self.eat_keyword("TO") {
            return Ok(None);
        }
        let name = self.expect_ident()?;
        let section = if *self.peek() == Tok::LParen {
            self.bump();
            let s = self.section_dims()?;
            self.expect(Tok::RParen)?;
            Some(s)
        } else {
            None
        };
        Ok(Some(TargetAst { name, section }))
    }

    fn format_list(&mut self) -> Result<Vec<FormatAst>, FrontendError> {
        let mut out = Vec::new();
        loop {
            let f = match self.peek().clone() {
                Tok::Colon => {
                    self.bump();
                    FormatAst::Colon
                }
                Tok::Ident(kw) => match kw.as_str() {
                    "BLOCK" => {
                        self.bump();
                        FormatAst::Block
                    }
                    "BLOCK_BALANCED" => {
                        self.bump();
                        FormatAst::BlockBalanced
                    }
                    "CYCLIC" => {
                        self.bump();
                        if *self.peek() == Tok::LParen {
                            self.bump();
                            let e = self.expr()?;
                            self.expect(Tok::RParen)?;
                            FormatAst::Cyclic(Some(e))
                        } else {
                            FormatAst::Cyclic(None)
                        }
                    }
                    "GENERAL_BLOCK" | "INDIRECT" => {
                        let indirect = kw == "INDIRECT";
                        self.bump();
                        self.expect(Tok::LParen)?;
                        // accept (/ e1, e2 /) array constructors too
                        let slashed = *self.peek() == Tok::Slash;
                        if slashed {
                            self.bump();
                        }
                        let mut es = vec![self.expr()?];
                        while *self.peek() == Tok::Comma {
                            self.bump();
                            es.push(self.expr()?);
                        }
                        if slashed {
                            self.expect(Tok::Slash)?;
                        }
                        self.expect(Tok::RParen)?;
                        if indirect {
                            FormatAst::Indirect(es)
                        } else {
                            FormatAst::GeneralBlock(es)
                        }
                    }
                    other => {
                        return self.err(format!("unknown distribution format `{other}`"))
                    }
                },
                other => {
                    return self.err(format!("expected distribution format, found `{other}`"))
                }
            };
            out.push(f);
            if *self.peek() == Tok::Comma {
                self.bump();
            } else {
                break;
            }
        }
        Ok(out)
    }

    /// `ALIGN A(axes) WITH B(subs)` (axes optional: `ALIGN A WITH B`).
    fn align(&mut self, realign: bool) -> Result<Stmt, FrontendError> {
        let alignee = self.expect_ident()?;
        let mut axes = Vec::new();
        if *self.peek() == Tok::LParen {
            self.bump();
            loop {
                let ax = match self.peek().clone() {
                    Tok::Colon => {
                        self.bump();
                        AxisAst::Colon
                    }
                    Tok::Star => {
                        self.bump();
                        AxisAst::Star
                    }
                    Tok::Ident(n) => {
                        self.bump();
                        AxisAst::Dummy(n)
                    }
                    other => {
                        return self.err(format!("expected alignee axis, found `{other}`"))
                    }
                };
                axes.push(ax);
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
            self.expect(Tok::RParen)?;
        }
        if !self.eat_keyword("WITH") {
            return self.err("expected `WITH` in ALIGN directive");
        }
        let base = self.expect_ident()?;
        let mut subscripts = Vec::new();
        if *self.peek() == Tok::LParen {
            self.bump();
            loop {
                subscripts.push(self.base_subscript()?);
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
            self.expect(Tok::RParen)?;
        }
        self.end_stmt()?;
        Ok(Stmt::Align { realign, alignee, axes, base, subscripts })
    }

    fn base_subscript(&mut self) -> Result<BaseSubAst, FrontendError> {
        // `*` alone
        if *self.peek() == Tok::Star
            && matches!(self.peek2(), Tok::Comma | Tok::RParen)
        {
            self.bump();
            return Ok(BaseSubAst::Star);
        }
        // leading colon → triplet with default lower
        if *self.peek() == Tok::Colon || *self.peek() == Tok::DoubleColon {
            return self.triplet_tail(None).map(|(l, u, s)| BaseSubAst::Triplet {
                lower: l,
                upper: u,
                stride: s,
            });
        }
        let first = self.expr()?;
        if *self.peek() == Tok::Colon || *self.peek() == Tok::DoubleColon {
            return self
                .triplet_tail(Some(first))
                .map(|(l, u, s)| BaseSubAst::Triplet { lower: l, upper: u, stride: s });
        }
        Ok(BaseSubAst::Expr(first))
    }

    /// Parse from the first `:` of a triplet; `lower` already consumed.
    fn triplet_tail(
        &mut self,
        lower: Option<Expr>,
    ) -> Result<TripletParts, FrontendError> {
        // current token is Colon or DoubleColon
        let double = *self.peek() == Tok::DoubleColon;
        self.bump();
        if double {
            // `l::s` — no upper, stride follows (or nothing: `l::` invalid)
            let stride = self.triplet_part()?;
            return Ok((lower, None, stride));
        }
        let upper = self.triplet_part()?;
        let stride = if *self.peek() == Tok::Colon {
            self.bump();
            self.triplet_part()?
        } else {
            None
        };
        Ok((lower, upper, stride))
    }

    fn triplet_part(&mut self) -> Result<Option<Expr>, FrontendError> {
        match self.peek() {
            Tok::Comma | Tok::RParen | Tok::Colon => Ok(None),
            _ => Ok(Some(self.expr()?)),
        }
    }

    fn section_dims(&mut self) -> Result<Vec<SectionDimAst>, FrontendError> {
        let mut out = Vec::new();
        loop {
            let d = if *self.peek() == Tok::Colon || *self.peek() == Tok::DoubleColon {
                let (l, u, s) = self.triplet_tail(None)?;
                SectionDimAst::Triplet { lower: l, upper: u, stride: s }
            } else {
                let first = self.expr()?;
                if *self.peek() == Tok::Colon || *self.peek() == Tok::DoubleColon {
                    let (l, u, s) = self.triplet_tail(Some(first))?;
                    SectionDimAst::Triplet { lower: l, upper: u, stride: s }
                } else {
                    SectionDimAst::Scalar(first)
                }
            };
            out.push(d);
            if *self.peek() == Tok::Comma {
                self.bump();
            } else {
                break;
            }
        }
        Ok(out)
    }

    fn array_ref(&mut self) -> Result<ArrayRef, FrontendError> {
        let name = self.expect_ident()?;
        let section = if *self.peek() == Tok::LParen {
            self.bump();
            let s = self.section_dims()?;
            self.expect(Tok::RParen)?;
            Some(s)
        } else {
            None
        };
        Ok(ArrayRef { name, section })
    }

    fn array_assignment(&mut self) -> Result<Stmt, FrontendError> {
        let lhs = self.array_ref()?;
        self.expect(Tok::Equals)?;
        // try `T1 + T2 + ...` as array references first; on failure,
        // re-parse the right-hand side as a scalar expression (a fill)
        let save = self.pos;
        match self.ref_sum() {
            Ok(terms) => Ok(Stmt::ArrayAssign { lhs, terms }),
            Err(_) => {
                self.pos = save;
                let value = self.expr()?;
                self.end_stmt()?;
                Ok(Stmt::ScalarAssign { lhs, value })
            }
        }
    }

    /// `T1 [+ T2 ...]` up to and including the end of statement.
    fn ref_sum(&mut self) -> Result<Vec<ArrayRef>, FrontendError> {
        let mut terms = vec![self.array_ref()?];
        while *self.peek() == Tok::Plus {
            self.bump();
            terms.push(self.array_ref()?);
        }
        self.end_stmt()?;
        Ok(terms)
    }

    /// `FORALL (I = l:u[:s], ...) LHS(subs) = rhs`
    fn forall(&mut self) -> Result<Stmt, FrontendError> {
        self.bump(); // FORALL
        self.expect(Tok::LParen)?;
        let mut indices = vec![self.forall_index()?];
        while *self.peek() == Tok::Comma {
            self.bump();
            indices.push(self.forall_index()?);
        }
        self.expect(Tok::RParen)?;
        let lhs = self.array_ref()?;
        self.expect(Tok::Equals)?;
        let save = self.pos;
        let rhs = match self.ref_sum() {
            // a bare forall index on the right (`A(I) = I`) is a value,
            // not an array reference — fall through to the scalar parse
            Ok(terms)
                if !terms.iter().any(|t| {
                    t.section.is_none() && indices.iter().any(|ix| ix.name == t.name)
                }) =>
            {
                ForallRhs::Refs(terms)
            }
            _ => {
                self.pos = save;
                let e = self.expr()?;
                self.end_stmt()?;
                ForallRhs::Scalar(e)
            }
        };
        Ok(Stmt::Forall { indices, lhs, rhs })
    }

    /// One `I = lower : upper [: stride]` control of a FORALL header.
    fn forall_index(&mut self) -> Result<ForallIndex, FrontendError> {
        let name = self.expect_ident()?;
        self.expect(Tok::Equals)?;
        let lower = self.expr()?;
        self.expect(Tok::Colon)?;
        let upper = self.expr()?;
        let stride = if *self.peek() == Tok::Colon {
            self.bump();
            Some(self.expr()?)
        } else {
            None
        };
        Ok(ForallIndex { name, lower, upper, stride })
    }

    fn declaration(&mut self, ty: String) -> Result<Stmt, FrontendError> {
        self.bump(); // the type keyword
        if ty == "DOUBLE" {
            // DOUBLE PRECISION
            self.eat_keyword("PRECISION");
        }
        let mut allocatable = false;
        let mut dimension = None;
        while *self.peek() == Tok::Comma {
            self.bump();
            let attr = self.expect_ident()?;
            match attr.as_str() {
                "ALLOCATABLE" => allocatable = true,
                "DIMENSION" => {
                    self.expect(Tok::LParen)?;
                    dimension = Some(self.dim_decl_list()?);
                    self.expect(Tok::RParen)?;
                }
                "PARAMETER" => {
                    // INTEGER, PARAMETER :: N = 5, M = 6
                    self.expect(Tok::DoubleColon)?;
                    let mut pairs = Vec::new();
                    loop {
                        let name = self.expect_ident()?;
                        self.expect(Tok::Equals)?;
                        pairs.push((name, self.expr()?));
                        if *self.peek() == Tok::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.end_stmt()?;
                    return Ok(Stmt::Parameter(pairs));
                }
                other => return self.err(format!("unknown attribute `{other}`")),
            }
        }
        if *self.peek() == Tok::DoubleColon {
            self.bump();
        }
        let mut entities = Vec::new();
        loop {
            let name = self.expect_ident()?;
            let dims = if *self.peek() == Tok::LParen {
                self.bump();
                let d = self.dim_decl_list()?;
                self.expect(Tok::RParen)?;
                Some(d)
            } else {
                None
            };
            entities.push(Entity { name, dims });
            if *self.peek() == Tok::Comma {
                self.bump();
            } else {
                break;
            }
        }
        self.end_stmt()?;
        Ok(Stmt::Declaration { ty, allocatable, dimension, entities })
    }

    fn dim_decl_list(&mut self) -> Result<Vec<DimDecl>, FrontendError> {
        let mut out = Vec::new();
        loop {
            let d = if *self.peek() == Tok::Colon {
                self.bump();
                DimDecl::Deferred
            } else {
                let first = self.expr()?;
                if *self.peek() == Tok::Colon {
                    self.bump();
                    let upper = self.expr()?;
                    DimDecl::Explicit { lower: Some(first), upper }
                } else {
                    DimDecl::Explicit { lower: None, upper: first }
                }
            };
            out.push(d);
            if *self.peek() == Tok::Comma {
                self.bump();
            } else {
                break;
            }
        }
        Ok(out)
    }

    fn name_list(&mut self) -> Result<Vec<String>, FrontendError> {
        let mut out = vec![self.expect_ident()?];
        while *self.peek() == Tok::Comma {
            self.bump();
            out.push(self.expect_ident()?);
        }
        Ok(out)
    }

    // -------------------------------------------------------- expressions

    fn expr(&mut self) -> Result<Expr, FrontendError> {
        let mut e = self.term()?;
        loop {
            match self.peek() {
                Tok::Plus => {
                    self.bump();
                    e = Expr::Add(Box::new(e), Box::new(self.term()?));
                }
                Tok::Minus => {
                    self.bump();
                    e = Expr::Sub(Box::new(e), Box::new(self.term()?));
                }
                _ => return Ok(e),
            }
        }
    }

    fn term(&mut self) -> Result<Expr, FrontendError> {
        let mut e = self.factor()?;
        loop {
            match self.peek() {
                Tok::Star => {
                    self.bump();
                    e = Expr::Mul(Box::new(e), Box::new(self.factor()?));
                }
                Tok::Slash => {
                    self.bump();
                    e = Expr::Div(Box::new(e), Box::new(self.factor()?));
                }
                _ => return Ok(e),
            }
        }
    }

    fn factor(&mut self) -> Result<Expr, FrontendError> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            Tok::Minus => {
                self.bump();
                Ok(Expr::Neg(Box::new(self.factor()?)))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                self.bump();
                match name.as_str() {
                    "MAX" | "MIN" => {
                        self.expect(Tok::LParen)?;
                        let a = self.expr()?;
                        self.expect(Tok::Comma)?;
                        let b = self.expr()?;
                        self.expect(Tok::RParen)?;
                        Ok(if name == "MAX" {
                            Expr::Max(Box::new(a), Box::new(b))
                        } else {
                            Expr::Min(Box::new(a), Box::new(b))
                        })
                    }
                    "LBOUND" | "UBOUND" | "SIZE" => {
                        self.expect(Tok::LParen)?;
                        let arr = self.expect_ident()?;
                        self.expect(Tok::Comma)?;
                        let dim = self.expr()?;
                        self.expect(Tok::RParen)?;
                        Ok(match name.as_str() {
                            "LBOUND" => Expr::LBound(arr, Box::new(dim)),
                            "UBOUND" => Expr::UBound(arr, Box::new(dim)),
                            _ => Expr::Size(arr, Box::new(dim)),
                        })
                    }
                    _ => Ok(Expr::Name(name)),
                }
            }
            other => self.err(format!("expected expression, found `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(src: &str) -> Stmt {
        let f = parse(src).unwrap();
        assert_eq!(f.main.stmts.len(), 1, "{:?}", f.main.stmts);
        f.main.stmts[0].stmt.clone()
    }

    #[test]
    fn paper_distribute_examples() {
        // §4's four example directives
        match one("!HPF$ DISTRIBUTE A(BLOCK)") {
            Stmt::Distribute { distributees, formats, target, .. } => {
                assert_eq!(distributees, vec!["A"]);
                assert_eq!(formats, vec![FormatAst::Block]);
                assert!(target.is_none());
            }
            s => panic!("{s:?}"),
        }
        match one("!HPF$ DISTRIBUTE B(CYCLIC) TO Q(1:NOP:2)") {
            Stmt::Distribute { formats, target, .. } => {
                assert_eq!(formats, vec![FormatAst::Cyclic(None)]);
                let t = target.unwrap();
                assert_eq!(t.name, "Q");
                assert!(t.section.is_some());
            }
            s => panic!("{s:?}"),
        }
        match one("!HPF$ DISTRIBUTE C(GENERAL_BLOCK(S))") {
            Stmt::Distribute { formats, .. } => {
                assert!(matches!(&formats[0], FormatAst::GeneralBlock(v) if v.len() == 1));
            }
            s => panic!("{s:?}"),
        }
        match one("!HPF$ DISTRIBUTE (BLOCK, :) :: E,F") {
            Stmt::Distribute { distributees, formats, .. } => {
                assert_eq!(distributees, vec!["E", "F"]);
                assert_eq!(formats, vec![FormatAst::Block, FormatAst::Colon]);
            }
            s => panic!("{s:?}"),
        }
    }

    #[test]
    fn inherit_forms() {
        match one("!HPF$ DISTRIBUTE A *") {
            Stmt::Distribute { inherit, formats, .. } => {
                assert_eq!(inherit, InheritAst::Inherit);
                assert!(formats.is_empty());
            }
            s => panic!("{s:?}"),
        }
        match one("!HPF$ DISTRIBUTE X *(CYCLIC(3))") {
            Stmt::Distribute { inherit, formats, .. } => {
                assert_eq!(inherit, InheritAst::InheritMatching);
                assert_eq!(formats.len(), 1);
            }
            s => panic!("{s:?}"),
        }
    }

    #[test]
    fn align_directives() {
        match one("!HPF$ ALIGN P(I,J) WITH T(2*I-1,2*J-1)") {
            Stmt::Align { alignee, axes, base, subscripts, realign } => {
                assert!(!realign);
                assert_eq!(alignee, "P");
                assert_eq!(axes, vec![AxisAst::Dummy("I".into()), AxisAst::Dummy("J".into())]);
                assert_eq!(base, "T");
                assert_eq!(subscripts.len(), 2);
                assert!(matches!(subscripts[0], BaseSubAst::Expr(_)));
            }
            s => panic!("{s:?}"),
        }
        match one("!HPF$ ALIGN A(:) WITH D(:,*)") {
            Stmt::Align { axes, subscripts, .. } => {
                assert_eq!(axes, vec![AxisAst::Colon]);
                assert!(matches!(subscripts[0], BaseSubAst::Triplet { .. }));
                assert_eq!(subscripts[1], BaseSubAst::Star);
            }
            s => panic!("{s:?}"),
        }
        match one("!HPF$ REALIGN B(:,:) WITH A(M::M,1::M)") {
            Stmt::Align { realign, subscripts, .. } => {
                assert!(realign);
                match &subscripts[0] {
                    BaseSubAst::Triplet { lower: Some(_), upper: None, stride: Some(_) } => {}
                    s => panic!("{s:?}"),
                }
            }
            s => panic!("{s:?}"),
        }
    }

    #[test]
    fn template_directive_rejected_with_guidance() {
        let err = parse("!HPF$ TEMPLATE T(100,100)").unwrap_err();
        assert!(matches!(err, FrontendError::TemplateDirective { line: 1 }));
        assert!(err.to_string().contains("§8"));
    }

    #[test]
    fn declarations() {
        match one("REAL U(0:N,1:N), P(N,N)") {
            Stmt::Declaration { ty, allocatable, entities, .. } => {
                assert_eq!(ty, "REAL");
                assert!(!allocatable);
                assert_eq!(entities.len(), 2);
                assert_eq!(entities[0].name, "U");
                let dims = entities[0].dims.as_ref().unwrap();
                assert!(matches!(
                    &dims[0],
                    DimDecl::Explicit { lower: Some(Expr::Int(0)), .. }
                ));
            }
            s => panic!("{s:?}"),
        }
        match one("REAL, ALLOCATABLE :: A(:,:), C(:)") {
            Stmt::Declaration { allocatable, entities, .. } => {
                assert!(allocatable);
                assert_eq!(entities[0].dims.as_ref().unwrap().len(), 2);
                assert!(matches!(entities[0].dims.as_ref().unwrap()[0], DimDecl::Deferred));
            }
            s => panic!("{s:?}"),
        }
        match one("REAL, ALLOCATABLE, DIMENSION(:) :: C, D") {
            Stmt::Declaration { dimension, entities, .. } => {
                assert_eq!(dimension.unwrap().len(), 1);
                assert_eq!(entities.len(), 2);
            }
            s => panic!("{s:?}"),
        }
    }

    #[test]
    fn parameters() {
        match one("PARAMETER (N = 64, NOP = 8)") {
            Stmt::Parameter(pairs) => {
                assert_eq!(pairs.len(), 2);
                assert_eq!(pairs[0].0, "N");
            }
            s => panic!("{s:?}"),
        }
        match one("INTEGER, PARAMETER :: M = 3") {
            Stmt::Parameter(pairs) => assert_eq!(pairs[0], ("M".into(), Expr::Int(3))),
            s => panic!("{s:?}"),
        }
    }

    #[test]
    fn allocate_deallocate_read() {
        match one("ALLOCATE(A(N*M,N*M))") {
            Stmt::Allocate(v) => {
                assert_eq!(v[0].0, "A");
                assert_eq!(v[0].1.len(), 2);
            }
            s => panic!("{s:?}"),
        }
        assert_eq!(one("DEALLOCATE(B)"), Stmt::Deallocate(vec!["B".into()]));
        assert_eq!(
            one("READ 6,M,N"),
            Stmt::Read(vec!["M".into(), "N".into()])
        );
    }

    #[test]
    fn call_with_section() {
        match one("CALL SUB(A(2:996:2))") {
            Stmt::Call { name, args } => {
                assert_eq!(name, "SUB");
                let sec = args[0].section.as_ref().unwrap();
                assert!(matches!(
                    &sec[0],
                    SectionDimAst::Triplet {
                        lower: Some(Expr::Int(2)),
                        upper: Some(Expr::Int(996)),
                        stride: Some(Expr::Int(2))
                    }
                ));
            }
            s => panic!("{s:?}"),
        }
    }

    #[test]
    fn array_assignment_statement() {
        // the §8.1.1 statement
        match one("P=U(0:N-1,:)+U(1:N,:)+V(:,0:N-1)+V(:,1:N)") {
            Stmt::ArrayAssign { lhs, terms } => {
                assert_eq!(lhs.name, "P");
                assert!(lhs.section.is_none());
                assert_eq!(terms.len(), 4);
                assert_eq!(terms[0].name, "U");
            }
            s => panic!("{s:?}"),
        }
    }

    #[test]
    fn subroutine_units() {
        let src = "
PROGRAM MAIN
REAL A(1000)
CALL SUB(A(2:996:2))
END
SUBROUTINE SUB(X)
REAL X(:)
!HPF$ DISTRIBUTE X *
END
";
        let f = parse(src).unwrap();
        assert_eq!(f.main.name, "MAIN");
        assert_eq!(f.main.stmts.len(), 2);
        assert_eq!(f.subroutines.len(), 1);
        assert_eq!(f.subroutines[0].name, "SUB");
        assert_eq!(f.subroutines[0].dummies, vec!["X"]);
        assert_eq!(f.subroutines[0].stmts.len(), 2);
    }

    #[test]
    fn expressions_with_intrinsics() {
        match one("!HPF$ ALIGN X(I) WITH A(MIN(2*I, UBOUND(A,1)))") {
            Stmt::Align { subscripts, .. } => {
                assert!(matches!(&subscripts[0], BaseSubAst::Expr(Expr::Min(_, _))));
            }
            s => panic!("{s:?}"),
        }
    }

    #[test]
    fn dynamic_directive() {
        assert_eq!(
            one("!HPF$ DYNAMIC B,C"),
            Stmt::Dynamic(vec!["B".into(), "C".into()])
        );
        assert_eq!(one("!HPF$ DYNAMIC :: B"), Stmt::Dynamic(vec!["B".into()]));
    }

    #[test]
    fn unknown_directive_rejected() {
        assert!(parse("!HPF$ FROBNICATE A").is_err());
    }

    #[test]
    fn forall_with_reference_rhs() {
        match one("FORALL (I = 1:N) A(I) = B(I-1)") {
            Stmt::Forall { indices, lhs, rhs } => {
                assert_eq!(indices.len(), 1);
                assert_eq!(indices[0].name, "I");
                assert!(indices[0].stride.is_none());
                assert_eq!(lhs.name, "A");
                match rhs {
                    ForallRhs::Refs(terms) => {
                        assert_eq!(terms.len(), 1);
                        assert_eq!(terms[0].name, "B");
                    }
                    r => panic!("{r:?}"),
                }
            }
            s => panic!("{s:?}"),
        }
    }

    #[test]
    fn forall_with_scalar_rhs_and_stride() {
        match one("FORALL (I = 1:N, J = 1:M:2) A(I, J) = I + J") {
            Stmt::Forall { indices, rhs, .. } => {
                assert_eq!(indices.len(), 2);
                assert_eq!(indices[1].name, "J");
                assert_eq!(indices[1].stride, Some(Expr::Int(2)));
                assert!(matches!(rhs, ForallRhs::Scalar(Expr::Add(_, _))));
            }
            s => panic!("{s:?}"),
        }
    }

    #[test]
    fn forall_bare_index_rhs_is_a_value_not_a_reference() {
        // `A(I) = I` must not read `I` as a zero-section array term
        match one("FORALL (I = 1:N) A(I) = I") {
            Stmt::Forall { rhs, .. } => {
                assert_eq!(rhs, ForallRhs::Scalar(Expr::Name("I".into())));
            }
            s => panic!("{s:?}"),
        }
    }

    #[test]
    fn scalar_fill_backtracks_from_the_reference_parse() {
        // `2*N` fails the ref-sum parse, so the RHS re-parses as a value
        match one("A = 2*N") {
            Stmt::ScalarAssign { lhs, value } => {
                assert_eq!(lhs.name, "A");
                assert!(lhs.section.is_none());
                assert!(matches!(value, Expr::Mul(_, _)));
            }
            s => panic!("{s:?}"),
        }
        match one("A(1:4) = 3") {
            Stmt::ScalarAssign { lhs, value } => {
                assert!(lhs.section.is_some());
                assert_eq!(value, Expr::Int(3));
            }
            s => panic!("{s:?}"),
        }
    }

    #[test]
    fn bare_reference_sum_is_still_an_array_assignment() {
        match one("A = B + C") {
            Stmt::ArrayAssign { lhs, terms } => {
                assert_eq!(lhs.name, "A");
                assert_eq!(terms.len(), 2);
            }
            s => panic!("{s:?}"),
        }
    }
}
