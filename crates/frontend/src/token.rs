use std::fmt;

/// A lexical token of the directive sub-language.
///
/// Fortran is case-insensitive: the lexer uppercases identifiers, so
/// keywords compare as uppercase strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (uppercased).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `::`
    DoubleColon,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `=`
    Equals,
    /// The `!HPF$` sigil introducing a directive line.
    Directive,
    /// End of statement (line break).
    Newline,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(v) => write!(f, "{v}"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::Comma => write!(f, ","),
            Tok::Colon => write!(f, ":"),
            Tok::DoubleColon => write!(f, "::"),
            Tok::Star => write!(f, "*"),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Slash => write!(f, "/"),
            Tok::Equals => write!(f, "="),
            Tok::Directive => write!(f, "!HPF$"),
            Tok::Newline => write!(f, "<newline>"),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token plus its source line (1-based), for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Source line number.
    pub line: usize,
}
