use hpf_procs::ProcId;
use std::collections::HashMap;
use std::fmt;

/// A per-(source, destination) traffic matrix: how many elements each
/// processor pair exchanges in one communication phase.
///
/// One `(src, dst)` entry models one *vectorized* message — the standard
/// HPF-compiler strategy of aggregating all elements a statement moves
/// between a pair into a single transfer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommStats {
    pairs: HashMap<(u32, u32), u64>,
}

impl CommStats {
    /// An empty traffic matrix.
    pub fn new() -> Self {
        CommStats::default()
    }

    /// Record `elements` flowing `src → dst` (ignored when `src == dst` or
    /// `elements == 0` — local accesses are free).
    pub fn record(&mut self, src: ProcId, dst: ProcId, elements: u64) {
        if src == dst || elements == 0 {
            return;
        }
        *self.pairs.entry((src.0, dst.0)).or_insert(0) += elements;
    }

    /// Merge another matrix into this one.
    pub fn merge(&mut self, other: &CommStats) {
        for (&k, &v) in &other.pairs {
            *self.pairs.entry(k).or_insert(0) += v;
        }
    }

    /// Number of messages (communicating pairs).
    pub fn messages(&self) -> usize {
        self.pairs.len()
    }

    /// Total elements crossing processor boundaries.
    pub fn total_elements(&self) -> u64 {
        self.pairs.values().sum()
    }

    /// True iff no communication happens.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterate `(src, dst, elements)` entries (unordered).
    pub fn iter(&self) -> impl Iterator<Item = (ProcId, ProcId, u64)> + '_ {
        self.pairs.iter().map(|(&(s, d), &v)| (ProcId(s), ProcId(d), v))
    }

    /// Elements flowing `src → dst` (0 when the pair never communicates) —
    /// the per-pair lookup the exchange backends cross-check their measured
    /// wire traffic against.
    pub fn elements_between(&self, src: ProcId, dst: ProcId) -> u64 {
        self.pairs.get(&(src.0, dst.0)).copied().unwrap_or(0)
    }

    /// Elements received by each processor, as `(proc, elements)` with the
    /// heaviest receiver first.
    pub fn inbound_by_proc(&self) -> Vec<(ProcId, u64)> {
        let mut m: HashMap<u32, u64> = HashMap::new();
        for (&(_, d), &v) in &self.pairs {
            *m.entry(d).or_insert(0) += v;
        }
        let mut v: Vec<(ProcId, u64)> = m.into_iter().map(|(p, n)| (ProcId(p), n)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// The heaviest per-processor inbound volume (the BSP bottleneck).
    pub fn max_inbound(&self) -> u64 {
        self.inbound_by_proc().first().map(|&(_, n)| n).unwrap_or(0)
    }

    /// Number of distinct communicating neighbour pairs of one processor
    /// (fan-in + fan-out of `p`).
    pub fn degree(&self, p: ProcId) -> usize {
        self.pairs.keys().filter(|&&(s, d)| s == p.0 || d == p.0).count()
    }
}

impl fmt::Display for CommStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} messages, {} elements (max inbound {})",
            self.messages(),
            self.total_elements(),
            self.max_inbound()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: u32) -> ProcId {
        ProcId(n)
    }

    #[test]
    fn record_skips_local_and_empty() {
        let mut s = CommStats::new();
        s.record(p(1), p(1), 100);
        s.record(p(1), p(2), 0);
        assert!(s.is_empty());
        s.record(p(1), p(2), 5);
        s.record(p(1), p(2), 5);
        assert_eq!(s.messages(), 1);
        assert_eq!(s.total_elements(), 10);
    }

    #[test]
    fn inbound_accounting() {
        let mut s = CommStats::new();
        s.record(p(1), p(3), 10);
        s.record(p(2), p(3), 20);
        s.record(p(3), p(1), 5);
        assert_eq!(s.elements_between(p(2), p(3)), 20);
        assert_eq!(s.elements_between(p(3), p(2)), 0);
        assert_eq!(s.max_inbound(), 30);
        assert_eq!(s.inbound_by_proc()[0], (p(3), 30));
        assert_eq!(s.degree(p(3)), 3);
        assert_eq!(s.degree(p(2)), 1);
    }

    #[test]
    fn merge_adds() {
        let mut a = CommStats::new();
        a.record(p(1), p(2), 3);
        let mut b = CommStats::new();
        b.record(p(1), p(2), 4);
        b.record(p(2), p(1), 1);
        a.merge(&b);
        assert_eq!(a.total_elements(), 8);
        assert_eq!(a.messages(), 2);
    }
}
