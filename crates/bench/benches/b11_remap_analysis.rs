//! Ablation — region-algebraic remap analysis vs element-wise owner
//! comparison: the design choice DESIGN.md calls out (exact strided-rect
//! intersections instead of per-element enumeration).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hpf_bench::mapping_1d;
use hpf_core::FormatSpec;
use hpf_runtime::remap_analysis;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("remap_analysis");
    for n in [10_000usize, 100_000, 1_000_000] {
        let old = mapping_1d(n, 16, FormatSpec::Block);
        let new = mapping_1d(n, 16, FormatSpec::Cyclic(4));
        g.bench_with_input(BenchmarkId::new("region_algebra", n), &n, |b, _| {
            b.iter(|| black_box(remap_analysis(&old, &new, 16)))
        });
        // the element-wise oracle the region path replaces
        g.bench_with_input(BenchmarkId::new("elementwise", n), &n, |b, _| {
            b.iter(|| black_box(old.remap_volume(&new)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
