//! Property tests on the alignment forest (§2.4): random storms of
//! REDISTRIBUTE/REALIGN/ALLOCATE/DEALLOCATE must preserve the paper's
//! invariants at every step.

use hpf::prelude::*;
use proptest::prelude::*;

/// A randomized forest operation.
#[derive(Debug, Clone)]
enum Op {
    Redistribute { target: usize, fmt: u8 },
    Realign { alignee: usize, base: usize },
    Allocate { which: usize, n: u8 },
    Deallocate { which: usize },
}

fn arb_op(arrays: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..arrays, 0..4u8).prop_map(|(target, fmt)| Op::Redistribute { target, fmt }),
        (0..arrays, 0..arrays).prop_map(|(alignee, base)| Op::Realign { alignee, base }),
        (0..arrays, 2..20u8).prop_map(|(which, n)| Op::Allocate { which, n }),
        (0..arrays).prop_map(|which| Op::Deallocate { which }),
    ]
}

fn fmt_of(k: u8) -> FormatSpec {
    match k {
        0 => FormatSpec::Block,
        1 => FormatSpec::BlockBalanced,
        2 => FormatSpec::Cyclic(1),
        _ => FormatSpec::Cyclic(3),
    }
}

/// The §2.4 invariants, checked exhaustively.
fn check_invariants(ds: &DataSpace) {
    for id in ds.all_arrays() {
        if !ds.is_alive(id) {
            assert!(ds.children(id).is_empty(), "dead array with children");
            continue;
        }
        match ds.base_of(id) {
            None => {
                // primary: effective() must resolve
                assert!(ds.is_primary(id), "alive non-primary without base");
                ds.effective(id).expect("primary must resolve");
            }
            Some(base) => {
                // secondary: base alive, primary (height ≤ 1), and lists us
                assert!(ds.is_alive(base), "base of {} is dead", ds.name(id));
                assert!(
                    ds.is_primary(base),
                    "§2.4(1): base {} is itself aligned",
                    ds.name(base)
                );
                assert!(
                    ds.children(base).contains(&id),
                    "child link missing for {}",
                    ds.name(id)
                );
                // collocation guarantee (Definition 4) on a sample point
                let eff = ds.effective(id).expect("secondary must resolve");
                let dom = ds.domain(id).unwrap().clone();
                if let Some(first) = dom.iter().next() {
                    assert!(!eff.owners(&first).is_empty());
                }
            }
        }
        // child lists point back
        for &c in ds.children(id) {
            assert_eq!(ds.base_of(c), Some(id), "asymmetric forest edge");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any sequence of dynamic operations leaves a legal forest, and every
    /// element of every alive array keeps a non-empty owner set
    /// (Definition 1's totality).
    #[test]
    fn forest_storm_preserves_invariants(ops in prop::collection::vec(arb_op(5), 1..40)) {
        let mut ds = DataSpace::new(4);
        let mut ids = Vec::new();
        for k in 0..5usize {
            let id = ds.declare_allocatable(&format!("A{k}"), 1).unwrap();
            ds.set_dynamic(id);
            ids.push(id);
        }
        for op in ops {
            // all ops may legitimately fail (not allocated, base dead, ...);
            // what must never happen is an invariant-breaking success
            match op {
                Op::Redistribute { target, fmt } => {
                    let _ = ds.redistribute(ids[target], &DistributeSpec::new(vec![fmt_of(fmt)]));
                }
                Op::Realign { alignee, base } => {
                    if alignee != base {
                        let _ = ds.realign(ids[alignee], ids[base], &AlignSpec::identity(1));
                    }
                }
                Op::Allocate { which, n } => {
                    let _ = ds.allocate(ids[which], IndexDomain::of_shape(&[n as usize]).unwrap());
                }
                Op::Deallocate { which } => {
                    let _ = ds.deallocate(ids[which]);
                }
            }
            check_invariants(&ds);
        }
        // totality at the end
        for &id in &ids {
            if ds.is_alive(id) {
                let dom = ds.domain(id).unwrap().clone();
                for i in dom.iter() {
                    prop_assert!(!ds.owners(id, &i).unwrap().is_empty());
                }
            }
        }
    }

    /// Identity realign between equal-shaped arrays preserves the §2.3
    /// collocation guarantee whatever the base's distribution.
    #[test]
    fn collocation_invariant_under_redistribution(fmt1 in 0..4u8, fmt2 in 0..4u8, n in 4..40usize) {
        let mut ds = DataSpace::new(4);
        let b = ds.declare("B", IndexDomain::of_shape(&[n]).unwrap()).unwrap();
        let a = ds.declare("A", IndexDomain::of_shape(&[n]).unwrap()).unwrap();
        ds.set_dynamic(b);
        ds.distribute(b, &DistributeSpec::new(vec![fmt_of(fmt1)])).unwrap();
        ds.align(a, b, &AlignSpec::identity(1)).unwrap();
        // redistribute the base: §4.2 keeps the alignment invariant
        ds.redistribute(b, &DistributeSpec::new(vec![fmt_of(fmt2)])).unwrap();
        for i in 1..=n as i64 {
            prop_assert_eq!(
                ds.owners(a, &Idx::d1(i)).unwrap(),
                ds.owners(b, &Idx::d1(i)).unwrap()
            );
        }
    }

    /// owned_region partitions the domain for every non-replicated format,
    /// under arbitrary axis bounds.
    #[test]
    fn owned_regions_partition(fmt in 0..4u8, lower in -20i64..20, extent in 1..60usize, np in 1..8usize) {
        let mut ds = DataSpace::new(np);
        let dom = IndexDomain::standard(&[(lower, lower + extent as i64 - 1)]).unwrap();
        let a = ds.declare("A", dom.clone()).unwrap();
        ds.distribute(a, &DistributeSpec::new(vec![fmt_of(fmt)])).unwrap();
        let mut seen = std::collections::HashSet::new();
        for p in 1..=np as u32 {
            for i in ds.owned_region(a, ProcId(p)).unwrap().iter() {
                prop_assert!(seen.insert(i[0]), "element {} owned twice", i[0]);
                prop_assert_eq!(
                    ds.owners(a, &i).unwrap().as_single().unwrap(),
                    ProcId(p)
                );
            }
        }
        prop_assert_eq!(seen.len(), extent);
    }

    /// CONSTRUCT with affine alignments: A(i) owners equal B(a·i+c) owners
    /// pointwise (the Definition 4 equation), for random strides/offsets.
    #[test]
    fn construct_matches_definition4(
        fmt in 0..4u8,
        a_coef in 1..4i64,
        c_off in 0..8i64,
        n in 4..24i64)
    {
        let base_n = a_coef * n + c_off;
        let mut ds = DataSpace::new(4);
        let b = ds.declare("B", IndexDomain::standard(&[(1, base_n)]).unwrap()).unwrap();
        let a = ds.declare("A", IndexDomain::standard(&[(1, n)]).unwrap()).unwrap();
        ds.distribute(b, &DistributeSpec::new(vec![fmt_of(fmt)])).unwrap();
        ds.align(a, b, &AlignSpec::with_exprs(1, vec![AlignExpr::dummy(0) * a_coef + c_off]))
            .unwrap();
        for i in 1..=n {
            prop_assert_eq!(
                ds.owners(a, &Idx::d1(i)).unwrap(),
                ds.owners(b, &Idx::d1(a_coef * i + c_off)).unwrap(),
                "i = {}", i
            );
        }
    }
}

/// Regression: a failing REALIGN/REDISTRIBUTE must leave the forest
/// untouched (found by the storm test — the §5.2 steps used to mutate
/// before validating).
#[test]
fn failing_directives_are_atomic() {
    let mut ds = DataSpace::new(4);
    let a = ds.declare("A", IndexDomain::of_shape(&[16]).unwrap()).unwrap();
    let b = ds.declare("B", IndexDomain::of_shape(&[16]).unwrap()).unwrap();
    let c = ds.declare("C", IndexDomain::of_shape(&[16]).unwrap()).unwrap();
    ds.set_dynamic(a);
    ds.set_dynamic(c);
    // A aligned to B; C aligned to B
    ds.realign(a, b, &AlignSpec::identity(1)).unwrap();
    ds.realign(c, b, &AlignSpec::identity(1)).unwrap();

    // failing REALIGN: target base A is secondary (and not aligned to C)
    let before_children: Vec<_> = ds.children(b).to_vec();
    assert!(matches!(
        ds.realign(c, a, &AlignSpec::identity(1)),
        Err(HpfError::BaseIsSecondary(_))
    ));
    // forest unchanged: C still aligned to B, B still lists both children
    assert_eq!(ds.base_of(c), Some(b));
    assert_eq!(ds.children(b), &before_children[..]);

    // failing REDISTRIBUTE: malformed GENERAL_BLOCK must not detach C
    assert!(ds
        .redistribute(c, &DistributeSpec::new(vec![FormatSpec::GeneralBlock(vec![99])]))
        .is_err());
    assert_eq!(ds.base_of(c), Some(b), "C must still be aligned to B");
    assert_eq!(ds.children(b), &before_children[..]);

    // failing REALIGN with a bad alignment spec (extent violation)
    let small = ds.declare("S", IndexDomain::of_shape(&[4]).unwrap()).unwrap();
    let err = ds.realign(
        c,
        small,
        &AlignSpec::new(
            vec![hpf::core::AligneeAxis::Colon],
            vec![hpf::core::BaseSubscript::COLON],
        ),
    );
    assert!(matches!(err, Err(HpfError::ColonExtent { .. })));
    assert_eq!(ds.base_of(c), Some(b), "C must survive the failed realign");
}
