//! `hpf-lint` — run the static schedule verifier over example programs.
//!
//! ```text
//! hpf-lint                     verify every built-in scenario
//! hpf-lint quickstart ...      verify the named scenarios
//! hpf-lint prog.hpf ...        elaborate + lower a source file, verify its plans
//! hpf-lint --np 8 prog.hpf     ... over 8 abstract processors
//! hpf-lint --list              list scenario names
//! ```
//!
//! Source files go through the whole frontend pipeline: the recovering
//! elaborator and the lowerer accumulate every diagnostic (rendered
//! against the source), and only a clean program's compiled plans reach
//! the verifier.
//!
//! Exit status: 0 when every verified plan is clean (an expected
//! replicated-divergence verdict is reported as a note, not a failure),
//! 1 when any statement carries a diagnostic or a source fails to lower,
//! 2 on usage errors.

use hpf_frontend::{render_diagnostics, Elaborator, Lowerer};
use hpf_verify::scenarios::{self, Scenario};
use hpf_verify::AnalysisVerdict;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--list") {
        for s in scenarios::all() {
            println!("{:<22} {}", s.name, s.summary);
        }
        return ExitCode::SUCCESS;
    }

    // Split the arguments: `.hpf` paths are source files for the pipeline,
    // everything else names a built-in scenario. `--np` applies to files.
    let mut np = 4usize;
    let mut files: Vec<String> = Vec::new();
    let mut names: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--np" {
            np = match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => v,
                None => {
                    usage();
                    return ExitCode::from(2);
                }
            };
        } else if a.ends_with(".hpf") {
            files.push(a);
        } else {
            names.push(a);
        }
    }

    let picked: Vec<Scenario> = if names.is_empty() && !files.is_empty() {
        Vec::new()
    } else if names.is_empty() {
        scenarios::all()
    } else {
        let mut picked = Vec::with_capacity(names.len());
        for name in &names {
            match scenarios::by_name(name) {
                Some(s) => picked.push(s),
                None => {
                    eprintln!("hpf-lint: unknown scenario `{name}`");
                    usage();
                    return ExitCode::from(2);
                }
            }
        }
        picked
    };

    let mut findings = 0usize;
    let mut statements = 0usize;
    let mut units = 0usize;

    for scenario in &picked {
        println!("== {} — {}", scenario.name, scenario.summary);
        let mut prog = (scenario.build)();
        let report = match prog.verify_all() {
            Ok(r) => r,
            Err(e) => {
                eprintln!("hpf-lint: {}: planning failed: {e}", scenario.name);
                return ExitCode::from(2);
            }
        };
        statements += report.statements.len();
        units += 1;
        for stmt in &report.statements {
            print!("{stmt}");
            if stmt.verdict == AnalysisVerdict::ReplicatedDivergence {
                println!(
                    "   note: replicated operand — analysis totals legitimately \
                     diverge (every replica computes locally)"
                );
            }
        }
        findings += report.finding_count();
        println!();
    }

    for file in &files {
        println!("== {file} — lowered over {np} abstract processors");
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("hpf-lint: cannot read {file}: {e}");
                return ExitCode::from(2);
            }
        };
        let (elab, mut diags) = Elaborator::new(np).run_recover(&src);
        let (mut lowered, lower_diags) = Lowerer::lower(&elab);
        diags.extend(lower_diags);
        if !diags.is_empty() {
            eprint!("{}", render_diagnostics(&src, &diags));
            findings += diags.len();
            continue;
        }
        let report = match lowered.program.verify_all() {
            Ok(r) => r,
            Err(e) => {
                eprintln!("hpf-lint: {file}: planning failed: {e}");
                return ExitCode::from(2);
            }
        };
        statements += report.statements.len();
        units += 1;
        for stmt in &report.statements {
            print!("{stmt}");
            if stmt.verdict == AnalysisVerdict::ReplicatedDivergence {
                println!(
                    "   note: replicated operand — analysis totals legitimately \
                     diverge (every replica computes locally)"
                );
            }
        }
        findings += report.finding_count();
        println!();
    }

    if findings == 0 {
        println!(
            "hpf-lint: {statements} statement plan(s) across {units} unit(s): \
             all five properties hold"
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("hpf-lint: {findings} finding(s) — plans are NOT proven safe");
        ExitCode::FAILURE
    }
}

fn usage() {
    eprintln!(
        "usage: hpf-lint [--list] [--np N] [scenario | file.hpf ...]\n\
         verifies compiled plans for built-in scenarios and/or lowered .hpf\n\
         source files; with no names, all built-in scenarios"
    );
}
