use crate::error::FrontendError;
use crate::token::{Spanned, Tok};

/// Tokenize a directive-language source text.
///
/// Line structure follows free-form Fortran: one statement per line,
/// `!`-to-end-of-line comments, with the special prefix `!HPF$` marking a
/// directive statement rather than a comment.
pub fn lex(src: &str) -> Result<Vec<Spanned>, FrontendError> {
    let mut out = Vec::new();
    for (lineno, raw) in src.lines().enumerate() {
        let line = lineno + 1;
        let mut s = raw.trim();
        if s.is_empty() {
            continue;
        }
        // directive sigil or comment?
        let upper5 = s.get(..5).map(|p| p.to_ascii_uppercase());
        if upper5.as_deref() == Some("!HPF$") {
            out.push(Spanned { tok: Tok::Directive, line });
            s = s[5..].trim_start();
        } else if s.starts_with('!') {
            continue; // plain comment line
        }
        let produced = lex_line(s, line, &mut out)?;
        if produced {
            out.push(Spanned { tok: Tok::Newline, line });
        } else if matches!(out.last(), Some(Spanned { tok: Tok::Directive, .. })) {
            out.pop(); // bare "!HPF$" with nothing after it
        }
    }
    out.push(Spanned { tok: Tok::Eof, line: src.lines().count() + 1 });
    Ok(out)
}

/// Lex one statement body; returns whether any token was produced.
fn lex_line(s: &str, line: usize, out: &mut Vec<Spanned>) -> Result<bool, FrontendError> {
    let bytes = s.as_bytes();
    let mut k = 0usize;
    let mut any = false;
    while k < bytes.len() {
        let c = bytes[k] as char;
        let tok = match c {
            ' ' | '\t' | '\r' => {
                k += 1;
                continue;
            }
            '!' => break, // trailing comment
            '(' => {
                k += 1;
                Tok::LParen
            }
            ')' => {
                k += 1;
                Tok::RParen
            }
            ',' => {
                k += 1;
                Tok::Comma
            }
            '*' => {
                k += 1;
                Tok::Star
            }
            '+' => {
                k += 1;
                Tok::Plus
            }
            '-' => {
                k += 1;
                Tok::Minus
            }
            '/' => {
                k += 1;
                Tok::Slash
            }
            '=' => {
                k += 1;
                Tok::Equals
            }
            ':' => {
                if bytes.get(k + 1) == Some(&b':') {
                    k += 2;
                    Tok::DoubleColon
                } else {
                    k += 1;
                    Tok::Colon
                }
            }
            '0'..='9' => {
                let start = k;
                while k < bytes.len() && bytes[k].is_ascii_digit() {
                    k += 1;
                }
                let text = &s[start..k];
                let v: i64 = text.parse().map_err(|_| FrontendError::Lex {
                    line,
                    what: format!("integer literal `{text}` out of range"),
                })?;
                Tok::Int(v)
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = k;
                while k < bytes.len()
                    && (bytes[k].is_ascii_alphanumeric() || bytes[k] == b'_' || bytes[k] == b'$')
                {
                    k += 1;
                }
                Tok::Ident(s[start..k].to_ascii_uppercase())
            }
            other => {
                return Err(FrontendError::Lex {
                    line,
                    what: format!("unexpected character `{other}`"),
                })
            }
        };
        out.push(Spanned { tok, line });
        any = true;
    }
    Ok(any)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn directive_line() {
        let t = toks("!HPF$ DISTRIBUTE A(BLOCK)");
        assert_eq!(
            t,
            vec![
                Tok::Directive,
                Tok::Ident("DISTRIBUTE".into()),
                Tok::Ident("A".into()),
                Tok::LParen,
                Tok::Ident("BLOCK".into()),
                Tok::RParen,
                Tok::Newline,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn comments_skipped_directives_kept() {
        let t = toks("! a comment\nREAL A(4) ! trailing\n!hpf$ DYNAMIC A");
        assert!(t.contains(&Tok::Directive));
        assert!(!t.iter().any(|t| matches!(t, Tok::Ident(s) if s == "COMMENT")));
        assert!(!t.iter().any(|t| matches!(t, Tok::Ident(s) if s == "TRAILING")));
    }

    #[test]
    fn triplets_and_double_colon() {
        let t = toks("A(2:996:2) :: B");
        assert_eq!(
            t,
            vec![
                Tok::Ident("A".into()),
                Tok::LParen,
                Tok::Int(2),
                Tok::Colon,
                Tok::Int(996),
                Tok::Colon,
                Tok::Int(2),
                Tok::RParen,
                Tok::DoubleColon,
                Tok::Ident("B".into()),
                Tok::Newline,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn case_insensitive() {
        assert_eq!(toks("real")[0], Tok::Ident("REAL".into()));
    }

    #[test]
    fn expressions() {
        let t = toks("T(2*I-1, 2*J-1)");
        assert!(t.contains(&Tok::Star));
        assert!(t.contains(&Tok::Minus));
    }

    #[test]
    fn bad_character_rejected() {
        assert!(lex("A @ B").is_err());
    }

    #[test]
    fn blank_and_empty_directive_lines() {
        let t = toks("\n\n!HPF$\nREAL A(2)");
        assert_eq!(t.iter().filter(|t| matches!(t, Tok::Directive)).count(), 0);
        assert_eq!(t.iter().filter(|t| matches!(t, Tok::Newline)).count(), 1);
    }
}
