//! The §6 allocatable/dynamic program, end to end through the front end.
//!
//! Templates cannot describe allocatable arrays (§8.2 problem 1); the
//! paper's model handles them by propagating spec-part directives to every
//! `ALLOCATE` and by letting `REALIGN`/`REDISTRIBUTE` rewire the alignment
//! forest at run time. This example runs the paper's §6 program and prints
//! the forest narrative, including how many elements each dynamic
//! remapping moved.
//!
//! Run with: `cargo run --example allocatable_dynamic`

use hpf::prelude::*;

fn main() {
    // the §6 example program (PR scaled to the 8-processor AP)
    let src = r#"
      REAL, ALLOCATABLE :: A(:,:), B(:,:)
      REAL, ALLOCATABLE :: C(:), D(:)
!HPF$ PROCESSORS PR(8)
!HPF$ PROCESSORS GRID(2,4)
!HPF$ DISTRIBUTE A(CYCLIC,BLOCK) TO GRID
!HPF$ DISTRIBUTE (BLOCK) :: C,D
!HPF$ DYNAMIC B,C
      READ 6,M,N
      ALLOCATE(A(N*M,N*M))
      ALLOCATE(B(N,N))
!HPF$ REALIGN B(:,:) WITH A(M::M,1::M)
      ALLOCATE(C(10000), D(10000))
!HPF$ REDISTRIBUTE C(CYCLIC) TO PR
      END
"#;
    let elab = Elaborator::new(8)
        .with_input("M", 3)
        .with_input("N", 16)
        .run(src)
        .expect("elaboration");

    println!("elaboration narrative (§6 program, M=3, N=16):\n{}", elab.report);

    println!("final descriptors:");
    for name in ["A", "B", "C", "D"] {
        let id = elab.array(name).unwrap();
        println!("  {}", inquiry::describe(&elab.space, id));
    }

    // verify the §6 collocation: B(i,j) with A(M*i, M*(j-1)+1)
    let (a, b) = (elab.array("A").unwrap(), elab.array("B").unwrap());
    let m = 3i64;
    for i in 1..=16i64 {
        for j in 1..=16i64 {
            assert_eq!(
                elab.space.owners(b, &Idx::d2(i, j)).unwrap(),
                elab.space.owners(a, &Idx::d2(m * i, m * j - 2)).unwrap(),
            );
        }
    }
    println!("\nREALIGN invariant verified: B(i,j) collocated with A(3i, 3j-2)");
    println!(
        "total elements moved by dynamic remappings: {}",
        elab.report.total_remap_volume()
    );

    // deallocate B: nothing is aligned to it, the forest just shrinks;
    // deallocate A while B is aligned → B would be promoted (see tests)
    let mut space = elab.space;
    space.deallocate(b).unwrap();
    println!("after DEALLOCATE(B): B alive = {}", space.is_alive(b));
}
