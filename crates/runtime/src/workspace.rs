//! Reusable execution scratch — the zero-allocation warm-replay contract.
//!
//! A [`PlanWorkspace`] owns the per-processor, per-term packed operand
//! buffers a plan replay fills during its pack phase. Building one costs
//! the allocations once; every subsequent
//! [`ExecPlan::execute_seq_with`](crate::ExecPlan::execute_seq_with) /
//! [`ExecPlan::execute_par_with`](crate::ExecPlan::execute_par_with)
//! against the same plan reuses the buffers, so a **warm replay performs
//! zero heap allocations** (asserted by the `zero_alloc_replay`
//! integration test with a counting global allocator).
//!
//! [`crate::PlanCache`] keeps one workspace per cached plan, which is how
//! [`crate::Program::run`] gets allocation-free timesteps without callers
//! managing workspaces themselves.

use crate::fuse::ProgramPlan;
use crate::plan::ExecPlan;

/// Preallocated pack buffers for one [`ExecPlan`]: `bufs[p][t]` is the
/// packed operand buffer of simulated processor `p` for RHS term `t`,
/// sized to exactly the processor's computed volume. `stage[k]` is the
/// persistent message staging buffer for the plan's `k`-th communicating
/// processor pair (in [`MessagePlan`](crate::MessagePlan) order), sized
/// to exactly that pair's message length — the shared-memory backend's
/// send/recv buffer.
#[derive(Debug, Clone, Default)]
pub struct PlanWorkspace {
    pub(crate) bufs: Vec<Vec<Vec<f64>>>,
    pub(crate) stage: Vec<Vec<f64>>,
}

impl PlanWorkspace {
    /// An empty workspace; the first replay through it sizes it for its
    /// plan (allocating once).
    pub fn new() -> Self {
        PlanWorkspace::default()
    }

    /// A workspace preallocated for `plan` — replays through it allocate
    /// nothing.
    pub fn for_plan(plan: &ExecPlan) -> Self {
        let mut ws = PlanWorkspace::new();
        ws.ensure(plan);
        ws
    }

    /// True iff the buffers already have exactly the shape `plan`'s replay
    /// needs (in which case a replay reuses them without allocating).
    pub fn matches(&self, plan: &ExecPlan) -> bool {
        let per_proc = plan.per_proc();
        let pairs = plan.message_plan().pairs();
        self.bufs.len() == per_proc.len()
            && self.bufs.iter().zip(per_proc).all(|(bufs, pp)| {
                bufs.len() == pp.terms.len()
                    && bufs.iter().zip(&pp.terms).all(|(b, ts)| b.len() == ts.elements)
            })
            && self.stage.len() == pairs.len()
            && self.stage.iter().zip(pairs).all(|(s, p)| s.len() == p.elements)
    }

    /// Resize for `plan` if the shape differs (the only point where a
    /// replay path may allocate).
    pub(crate) fn ensure(&mut self, plan: &ExecPlan) {
        if self.matches(plan) {
            return;
        }
        self.bufs = plan
            .per_proc()
            .iter()
            .map(|pp| pp.terms.iter().map(|ts| vec![0.0f64; ts.elements]).collect())
            .collect();
        self.stage = plan
            .message_plan()
            .pairs()
            .iter()
            .map(|p| vec![0.0f64; p.elements])
            .collect();
    }

    /// Total `f64` elements held across all pack buffers (the workspace's
    /// memory footprint in elements, excluding the message staging
    /// buffers — see [`PlanWorkspace::stage_elements`]).
    pub fn buffer_elements(&self) -> usize {
        self.bufs.iter().flatten().map(Vec::len).sum()
    }

    /// Total `f64` elements held across the per-pair message staging
    /// buffers (= the plan's wire traffic per replay).
    pub fn stage_elements(&self) -> usize {
        self.stage.iter().map(Vec::len).sum()
    }
}

/// Preallocated scratch for a fused timestep (see [`crate::ProgramPlan`]):
/// one [`PlanWorkspace`] per constituent statement — the persistent
/// receiver-side packed operand buffers that ghost-region reuse relies on
/// — plus one message staging buffer per *fused* pair, sized for the
/// pair's full coalesced message (a warm timestep may stage any subset of
/// its segments, never more). Warm fused replays through a matching
/// workspace perform **zero heap allocations**.
#[derive(Debug, Clone, Default)]
pub struct FusedWorkspace {
    pub(crate) per_stmt: Vec<PlanWorkspace>,
    pub(crate) stage: Vec<Vec<f64>>,
    /// Measured wall-nanoseconds each simulated processor spent in compute
    /// kernels during the last fused replay through this workspace —
    /// the adaptive controller's per-rank load sample. Preallocated here so
    /// sampling never costs the warm path an allocation.
    pub(crate) rank_ns: Vec<u64>,
}

impl FusedWorkspace {
    /// An empty workspace; the first fused replay sizes it (allocating
    /// once).
    pub fn new() -> Self {
        FusedWorkspace::default()
    }

    /// A workspace preallocated for `plan`.
    pub fn for_plan(plan: &ProgramPlan) -> Self {
        let mut ws = FusedWorkspace::new();
        ws.ensure(plan);
        ws
    }

    /// True iff the buffers already have exactly the shape `plan`'s fused
    /// replay needs.
    pub fn matches(&self, plan: &ProgramPlan) -> bool {
        self.per_stmt.len() == plan.plans().len()
            && self.per_stmt.iter().zip(plan.plans()).all(|(ws, p)| ws.matches(p))
            && self.stage.len() == plan.pairs().len()
            && self.stage.iter().zip(plan.pairs()).all(|(s, p)| s.len() == p.elements)
            && self.rank_ns.len() == plan.np()
    }

    /// Resize for `plan` if the shape differs (the only point where a
    /// fused replay may allocate).
    pub(crate) fn ensure(&mut self, plan: &ProgramPlan) {
        if self.matches(plan) {
            return;
        }
        self.per_stmt = plan.plans().iter().map(|p| PlanWorkspace::for_plan(p)).collect();
        self.stage = plan.pairs().iter().map(|p| vec![0.0f64; p.elements]).collect();
        self.rank_ns = vec![0u64; plan.np()];
    }

    /// Total `f64` elements held across every statement's pack buffers.
    pub fn buffer_elements(&self) -> usize {
        self.per_stmt.iter().map(PlanWorkspace::buffer_elements).sum()
    }

    /// Total `f64` elements held across the fused per-pair staging
    /// buffers (= the fused timestep's worst-case wire traffic).
    pub fn stage_elements(&self) -> usize {
        self.stage.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::DistArray;
    use crate::assign::{Assignment, Combine, Term};
    use hpf_core::{DataSpace, DistributeSpec, FormatSpec};
    use hpf_index::{span, IndexDomain, Section};

    fn plan_of(n: usize, np: usize) -> (Vec<DistArray<f64>>, ExecPlan) {
        let mut ds = DataSpace::new(np);
        let a = ds.declare("A", IndexDomain::of_shape(&[n]).unwrap()).unwrap();
        let b = ds.declare("B", IndexDomain::of_shape(&[n]).unwrap()).unwrap();
        ds.distribute(a, &DistributeSpec::new(vec![FormatSpec::Block])).unwrap();
        ds.distribute(b, &DistributeSpec::new(vec![FormatSpec::Cyclic(1)])).unwrap();
        let arrays = vec![
            DistArray::from_fn("A", ds.effective(a).unwrap(), np, |i| i[0] as f64),
            DistArray::from_fn("B", ds.effective(b).unwrap(), np, |i| (i[0] * 2) as f64),
        ];
        let doms: Vec<&IndexDomain> = arrays.iter().map(|x| x.domain()).collect();
        let stmt = Assignment::new(
            0,
            Section::from_triplets(vec![span(1, n as i64)]),
            vec![Term::new(1, Section::from_triplets(vec![span(1, n as i64)]))],
            Combine::Copy,
            &doms,
        )
        .unwrap();
        let plan = ExecPlan::inspect(&arrays, &stmt).unwrap();
        (arrays, plan)
    }

    #[test]
    fn sized_exactly_for_plan() {
        let (_, plan) = plan_of(20, 4);
        let ws = PlanWorkspace::for_plan(&plan);
        assert!(ws.matches(&plan));
        // one term, full domain computed → 20 buffered elements
        assert_eq!(ws.buffer_elements(), 20);
    }

    #[test]
    fn empty_workspace_resizes_once() {
        let (_, plan) = plan_of(12, 3);
        let mut ws = PlanWorkspace::new();
        assert!(!ws.matches(&plan));
        ws.ensure(&plan);
        assert!(ws.matches(&plan));
        let before = ws.buffer_elements();
        ws.ensure(&plan); // idempotent
        assert_eq!(ws.buffer_elements(), before);
    }

    #[test]
    fn mismatched_shape_detected() {
        let (_, p1) = plan_of(20, 4);
        let (_, p2) = plan_of(24, 4);
        let ws = PlanWorkspace::for_plan(&p1);
        assert!(!ws.matches(&p2));
    }

    #[test]
    fn message_plan_pairs_present_for_mismatched_mappings() {
        // BLOCK ← CYCLIC(1) copy communicates heavily: the plan the
        // workspace serves carries one message schedule per pair
        let (_, plan) = plan_of(20, 4);
        let msgs = plan.message_plan();
        assert!(!msgs.pairs().is_empty());
        assert!(msgs.wire_elements() > 0);
    }
}
