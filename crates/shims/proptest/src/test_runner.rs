//! Configuration, error type, and the deterministic RNG behind the shim.

use std::fmt;

/// Per-test configuration (a subset of proptest's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; the shim trades a little coverage
        // for suite speed. Tests that need more set `with_cases`.
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail<S: Into<String>>(message: S) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The deterministic generator driving value generation.
///
/// Seeded from the test's fully-qualified name (plus an optional
/// `PROPTEST_SEED` environment override), so every run of a given test
/// explores the same sequence — failures are always reproducible.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from the test name (FNV-1a over the name, xor an env override).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(v) = s.parse::<u64>() {
                h ^= v;
            }
        }
        TestRng { state: h | 1 }
    }

    /// Next raw 64 bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `usize` in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform `i128` in `[lo, hi]` inclusive.
    pub fn in_range_i128(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u128 + 1;
        lo + (self.next_u64() as u128 % span) as i128
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::for_test("x::y");
        let mut b = TestRng::for_test("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("x::z");
        // different names almost surely diverge
        let _ = c.next_u64();
    }

    #[test]
    fn ranges_inclusive() {
        let mut r = TestRng::for_test("r");
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = r.in_range_i128(-2, 2);
            assert!((-2..=2).contains(&v));
            seen_lo |= v == -2;
            seen_hi |= v == 2;
        }
        assert!(seen_lo && seen_hi);
    }
}
