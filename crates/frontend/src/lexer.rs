use crate::error::FrontendError;
use crate::report::SourceDiagnostic;
use crate::token::{Span, Spanned, Tok};

/// Tokenize a directive-language source text, failing on the first
/// lexical error.
///
/// Line structure follows free-form Fortran: one statement per line,
/// `!`-to-end-of-line comments, with the special prefix `!HPF$` marking a
/// directive statement rather than a comment. This is the fail-fast
/// wrapper around [`lex_recover`]; drivers that want *every* problem in
/// one pass use the recovering form directly.
pub fn lex(src: &str) -> Result<Vec<Spanned>, FrontendError> {
    let (toks, diags) = lex_recover(src);
    match diags.into_iter().next() {
        Some(d) => Err(d.error),
        None => Ok(toks),
    }
}

/// Tokenize a source text, recovering from lexical errors: an offending
/// character (or out-of-range literal) is reported as a span-carrying
/// diagnostic and skipped, and lexing continues so one pass surfaces
/// every problem. The returned token stream always ends with
/// [`Tok::Eof`].
pub fn lex_recover(src: &str) -> (Vec<Spanned>, Vec<SourceDiagnostic>) {
    let mut out = Vec::new();
    let mut diags = Vec::new();
    for (lineno, raw) in src.lines().enumerate() {
        let line = lineno + 1;
        let mut s = raw.trim();
        if s.is_empty() {
            continue;
        }
        // column (1-based) where the trimmed text starts in the raw line
        let mut col0 = raw.len() - raw.trim_start().len() + 1;
        // directive sigil or comment?
        let upper5 = s.get(..5).map(|p| p.to_ascii_uppercase());
        if upper5.as_deref() == Some("!HPF$") {
            out.push(Spanned { tok: Tok::Directive, span: Span::new(line, col0, 5) });
            let rest = s[5..].trim_start();
            col0 += s.len() - rest.len();
            s = rest;
        } else if s.starts_with('!') {
            continue; // plain comment line
        }
        let produced = lex_line(s, line, col0, &mut out, &mut diags);
        if produced {
            out.push(Spanned { tok: Tok::Newline, span: Span::line_start(line) });
        } else if matches!(out.last(), Some(Spanned { tok: Tok::Directive, .. })) {
            out.pop(); // bare "!HPF$" with nothing after it
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        span: Span::line_start(src.lines().count() + 1),
    });
    (out, diags)
}

/// Lex one statement body; returns whether any token was produced.
/// `col0` is the 1-based source column of `s`'s first byte.
fn lex_line(
    s: &str,
    line: usize,
    col0: usize,
    out: &mut Vec<Spanned>,
    diags: &mut Vec<SourceDiagnostic>,
) -> bool {
    let bytes = s.as_bytes();
    let mut k = 0usize;
    let mut any = false;
    while k < bytes.len() {
        let c = bytes[k] as char;
        let start = k;
        let tok = match c {
            ' ' | '\t' | '\r' => {
                k += 1;
                continue;
            }
            '!' => break, // trailing comment
            '(' => {
                k += 1;
                Tok::LParen
            }
            ')' => {
                k += 1;
                Tok::RParen
            }
            ',' => {
                k += 1;
                Tok::Comma
            }
            '*' => {
                k += 1;
                Tok::Star
            }
            '+' => {
                k += 1;
                Tok::Plus
            }
            '-' => {
                k += 1;
                Tok::Minus
            }
            '/' => {
                k += 1;
                Tok::Slash
            }
            '=' => {
                k += 1;
                Tok::Equals
            }
            ':' => {
                if bytes.get(k + 1) == Some(&b':') {
                    k += 2;
                    Tok::DoubleColon
                } else {
                    k += 1;
                    Tok::Colon
                }
            }
            '0'..='9' => {
                while k < bytes.len() && bytes[k].is_ascii_digit() {
                    k += 1;
                }
                let text = &s[start..k];
                match text.parse::<i64>() {
                    Ok(v) => Tok::Int(v),
                    Err(_) => {
                        diags.push(SourceDiagnostic::new(
                            FrontendError::Lex {
                                line,
                                what: format!("integer literal `{text}` out of range"),
                            },
                            Span::new(line, col0 + start, k - start),
                        ));
                        continue; // skip the bad literal and keep lexing
                    }
                }
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                while k < bytes.len()
                    && (bytes[k].is_ascii_alphanumeric() || bytes[k] == b'_' || bytes[k] == b'$')
                {
                    k += 1;
                }
                Tok::Ident(s[start..k].to_ascii_uppercase())
            }
            other => {
                diags.push(SourceDiagnostic::new(
                    FrontendError::Lex {
                        line,
                        what: format!("unexpected character `{other}`"),
                    },
                    Span::new(line, col0 + start, other.len_utf8().max(1)),
                ));
                k += other.len_utf8(); // skip the bad character and keep lexing
                continue;
            }
        };
        out.push(Spanned { tok, span: Span::new(line, col0 + start, k - start) });
        any = true;
    }
    any
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn directive_line() {
        let t = toks("!HPF$ DISTRIBUTE A(BLOCK)");
        assert_eq!(
            t,
            vec![
                Tok::Directive,
                Tok::Ident("DISTRIBUTE".into()),
                Tok::Ident("A".into()),
                Tok::LParen,
                Tok::Ident("BLOCK".into()),
                Tok::RParen,
                Tok::Newline,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn comments_skipped_directives_kept() {
        let t = toks("! a comment\nREAL A(4) ! trailing\n!hpf$ DYNAMIC A");
        assert!(t.contains(&Tok::Directive));
        assert!(!t.iter().any(|t| matches!(t, Tok::Ident(s) if s == "COMMENT")));
        assert!(!t.iter().any(|t| matches!(t, Tok::Ident(s) if s == "TRAILING")));
    }

    #[test]
    fn triplets_and_double_colon() {
        let t = toks("A(2:996:2) :: B");
        assert_eq!(
            t,
            vec![
                Tok::Ident("A".into()),
                Tok::LParen,
                Tok::Int(2),
                Tok::Colon,
                Tok::Int(996),
                Tok::Colon,
                Tok::Int(2),
                Tok::RParen,
                Tok::DoubleColon,
                Tok::Ident("B".into()),
                Tok::Newline,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn case_insensitive() {
        assert_eq!(toks("real")[0], Tok::Ident("REAL".into()));
    }

    #[test]
    fn expressions() {
        let t = toks("T(2*I-1, 2*J-1)");
        assert!(t.contains(&Tok::Star));
        assert!(t.contains(&Tok::Minus));
    }

    #[test]
    fn bad_character_rejected() {
        assert!(lex("A @ B").is_err());
    }

    #[test]
    fn blank_and_empty_directive_lines() {
        let t = toks("\n\n!HPF$\nREAL A(2)");
        assert_eq!(t.iter().filter(|t| matches!(t, Tok::Directive)).count(), 0);
        assert_eq!(t.iter().filter(|t| matches!(t, Tok::Newline)).count(), 1);
    }

    #[test]
    fn spans_carry_columns() {
        let (t, diags) = lex_recover("  REAL A(4)");
        assert!(diags.is_empty());
        assert_eq!(t[0].span, Span::new(1, 3, 4)); // REAL
        assert_eq!(t[1].span, Span::new(1, 8, 1)); // A
        assert_eq!(t[2].span, Span::new(1, 9, 1)); // (
    }

    #[test]
    fn directive_spans_offset_past_sigil() {
        let (t, _) = lex_recover("!HPF$ DISTRIBUTE A(BLOCK)");
        assert_eq!(t[0].span, Span::new(1, 1, 5)); // !HPF$
        assert_eq!(t[1].span, Span::new(1, 7, 10)); // DISTRIBUTE
    }

    #[test]
    fn recovery_skips_bad_characters_and_reports_all() {
        let (t, diags) = lex_recover("A @ B\nC # D");
        assert_eq!(diags.len(), 2);
        assert_eq!(diags[0].span.line, 1);
        assert_eq!(diags[0].span.col, 3);
        assert_eq!(diags[1].span.line, 2);
        // the good tokens survive
        let idents: Vec<_> = t
            .iter()
            .filter_map(|s| match &s.tok {
                Tok::Ident(n) => Some(n.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(idents, vec!["A", "B", "C", "D"]);
    }

    #[test]
    fn recovery_skips_overflowing_literal() {
        let (t, diags) = lex_recover("A(99999999999999999999)");
        assert_eq!(diags.len(), 1);
        assert!(diags[0].error.to_string().contains("out of range"));
        assert!(t.iter().any(|s| s.tok == Tok::RParen));
    }
}
