//! Fault-tolerance suite: distribution-aware checkpoint/restore,
//! deterministic fault injection, and restore-and-replay recovery.
//!
//! The properties this pins:
//!
//! * a checkpoint written under *any* of the paper's mapping families
//!   and processor counts restores into *any other* bit-for-bit (the
//!   dense oracle is the invariant — the physical layout is not);
//! * a restore into the identical layout takes the fast path and
//!   preserves mapping identity, so the plan cache stays warm across a
//!   crash;
//! * corrupted shards and mangled manifests are rejected with precise
//!   diagnostics before a single element is written;
//! * an injected worker death on the `Channels` SPMD backend surfaces
//!   as a typed [`HpfError::Exchange`] (no panic, no hang), and
//!   a checkpointed [`Session`]'s restore-and-replay recovery converges
//!   to the exact state of an uninterrupted run;
//! * repeated fleet deaths degrade gracefully to `SharedMem` and the
//!   trajectory still completes correctly;
//! * a session running under an [`AdaptPolicy`] recovers from a kill
//!   injected *after* its live remap: the checkpoint carries the
//!   adapted layout through the restore, and the result still matches
//!   the uninterrupted static run bit-for-bit.

use hpf::prelude::*;
use proptest::prelude::*;
use std::path::PathBuf;
use std::time::Duration;

/// Unique temp directory per test (removed on success).
fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir()
        .join(format!("hpf-fault-tolerance-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// One of the paper's 1-D mapping families over `[n]` on `np` procs.
fn mapping_of(kind: u8, n: usize, np: usize) -> std::sync::Arc<EffectiveDist> {
    if kind % 5 == 4 {
        return std::sync::Arc::new(EffectiveDist::Replicated {
            domain: IndexDomain::of_shape(&[n]).unwrap(),
            procs: ProcSet::all(np),
        });
    }
    let fmt = match kind % 5 {
        0 => FormatSpec::Block,
        1 => FormatSpec::BlockBalanced,
        2 => FormatSpec::Cyclic(1),
        _ => FormatSpec::Cyclic(3),
    };
    let mut ds = DataSpace::new(np);
    let a = ds.declare("M", IndexDomain::of_shape(&[n]).unwrap()).unwrap();
    ds.distribute(a, &DistributeSpec::new(vec![fmt])).unwrap();
    ds.effective(a).unwrap()
}

fn arrays_with(kinds: (u8, u8), n: usize, np: usize, init: impl Fn(i64, i64) -> f64) -> Vec<DistArray<f64>> {
    vec![
        DistArray::from_fn("A", mapping_of(kinds.0, n, np), np, |i| init(i[0], 0)),
        DistArray::from_fn("B", mapping_of(kinds.1, n, np), np, |i| init(i[0], 1)),
    ]
}

/// A two-statement iterated program: a shifted sum (communicates across
/// every partition boundary) followed by a copy-back, so timesteps
/// compound and any lost or stale element diverges immediately.
fn build_program(kinds: (u8, u8), n: usize, np: usize) -> Program {
    let arrays = arrays_with(kinds, n, np, |i, k| (i * (k + 2) - 7) as f64);
    let mut prog = Program::new(arrays);
    let doms: Vec<&IndexDomain> = prog.arrays.iter().map(|a| a.domain()).collect();
    let n = n as i64;
    let s1 = Assignment::new(
        0,
        Section::from_triplets(vec![span(2, n)]),
        vec![
            Term::new(0, Section::from_triplets(vec![span(1, n - 1)])),
            Term::new(1, Section::from_triplets(vec![span(2, n)])),
        ],
        Combine::Sum,
        &doms,
    )
    .unwrap();
    let s2 = Assignment::new(
        1,
        Section::from_triplets(vec![span(1, n)]),
        vec![Term::new(0, Section::from_triplets(vec![span(1, n)]))],
        Combine::Copy,
        &doms,
    )
    .unwrap();
    prog.push(s1).unwrap();
    prog.push(s2).unwrap();
    prog
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Checkpoint under one (mapping, np), restore under another: the
    /// dense image survives bit-for-bit, whatever the layouts. When
    /// source and target layouts coincide the fast path must be taken.
    #[test]
    fn checkpoint_restores_across_any_mapping_change(
        ka in 0u8..5,
        kb in 0u8..5,
        ka2 in 0u8..5,
        kb2 in 0u8..5,
        np_src in 2usize..6,
        np_dst in 2usize..6,
    ) {
        let n = 33usize;
        let dir = tmpdir(&format!("prop-{ka}{kb}{ka2}{kb2}-{np_src}-{np_dst}"));
        let src = arrays_with((ka, kb), n, np_src, |i, k| (i * 31 + k * 17) as f64);
        let want: Vec<Vec<f64>> = src.iter().map(DistArray::to_dense).collect();
        let rep = save_checkpoint(&src, 5, &dir).unwrap();
        prop_assert_eq!(rep.timestep, 5);

        let mut dst = arrays_with((ka2, kb2), n, np_dst, |_, _| -1.0);
        let restored = restore_checkpoint(&mut dst, &rep.dir).unwrap();
        prop_assert_eq!(restored.arrays, 2);
        prop_assert_eq!(restored.fast + restored.remapped, 2);
        for (a, w) in dst.iter().zip(&want) {
            prop_assert_eq!(&a.to_dense(), w, "{} must match the dense oracle", a.name());
        }
        // identical layout ⇒ the cheap whole-shard path, and mapping
        // identity (hence plan-cache validity) is preserved
        if np_src == np_dst && ka == ka2 && kb == kb2 {
            prop_assert_eq!(restored.fast, 2);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The checkpoint written mid-trajectory equals the state a fresh
    /// reader restores — save/restore composes with real execution on
    /// either backend.
    #[test]
    fn trajectory_checkpoints_are_consistent_snapshots(
        ka in 0u8..4,
        kb in 0u8..4,
        backend_k in 0u8..2,
        steps in 1u64..4,
    ) {
        let backend = if backend_k == 0 { Backend::SharedMem } else { Backend::Channels };
        let dir = tmpdir(&format!("traj-{ka}-{kb}-{backend_k}-{steps}"));
        let mut sess = Session::new(build_program((ka, kb), 29, 4))
            .backend(backend)
            .checkpoint(CheckpointSpec::new(&dir, 1));
        let rep = sess.run(steps).unwrap();
        prop_assert_eq!(rep.timesteps, steps);
        prop_assert_eq!(rep.failures, 0);
        // the newest snapshot must reproduce the live final state
        let latest = latest_checkpoint(&dir).unwrap().expect("trajectory checkpointed");
        let mut mirror = build_program((ka, kb), 29, 4);
        let r = restore_checkpoint(&mut mirror.arrays, &latest).unwrap();
        prop_assert_eq!(r.timestep, steps);
        for (a, b) in sess.program().arrays.iter().zip(&mirror.arrays) {
            prop_assert_eq!(a.to_dense(), b.to_dense());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// 2-D block×block → fewer procs with a different layout: exercises the
/// multi-dimensional rect walk of the scatter path.
#[test]
fn two_dim_checkpoint_scatters_across_process_grids() {
    let dir = tmpdir("2d");
    let mk = |np: usize, grid: &[usize], fmts: Vec<FormatSpec>| {
        let mut ds = DataSpace::new(np);
        ds.declare_processors("G", IndexDomain::of_shape(grid).unwrap()).unwrap();
        let id = ds.declare("M", IndexDomain::of_shape(&[12, 10]).unwrap()).unwrap();
        ds.distribute(id, &DistributeSpec::to(fmts, "G")).unwrap();
        ds.effective(id).unwrap()
    };
    let src = vec![DistArray::from_fn(
        "M",
        mk(4, &[2, 2], vec![FormatSpec::Block, FormatSpec::Block]),
        4,
        |i| (i[0] * 100 + i[1]) as f64,
    )];
    let want = src[0].to_dense();
    let rep = save_checkpoint(&src, 1, &dir).unwrap();

    let mut dst = vec![DistArray::from_fn(
        "M",
        mk(2, &[1, 2], vec![FormatSpec::Cyclic(1), FormatSpec::Block]),
        2,
        |_| f64::NAN,
    )];
    let restored = restore_checkpoint(&mut dst, &rep.dir).unwrap();
    assert_eq!((restored.fast, restored.remapped, restored.elements), (0, 1, 120));
    assert_eq!(dst[0].to_dense(), want, "2-D cross-grid restore is exact");
    let _ = std::fs::remove_dir_all(&dir);
}

/// An injected worker kill on `Channels` surfaces as a typed error and
/// a checkpointed session recovers to the exact uninterrupted state —
/// with the plan cache surviving (the restore preserves mapping identity).
#[test]
fn injected_worker_death_recovers_to_uninterrupted_state() {
    let dir = tmpdir("kill");
    let steps = 5u64;
    let mut reference = Session::new(build_program((0, 2), 41, 6));
    reference.run(steps).unwrap();

    let mut sess = Session::new(build_program((0, 2), 41, 6))
        .backend(Backend::Channels)
        .checkpoint(CheckpointSpec::new(&dir, 1))
        .inject_faults(FaultPlan::new().with(Fault::KillWorker { rank: 3, step: 2 }));
    let rep = sess.run(steps).unwrap();
    assert_eq!(rep.timesteps, steps);
    assert_eq!(rep.failures, 1, "exactly the injected kill");
    assert!(!rep.degraded, "one fault must not trigger degradation");
    assert_eq!(rep.final_backend, Backend::Channels);
    let prog = sess.into_program();
    assert_eq!(prog.faults_fired(), 1);
    for (a, b) in prog.arrays.iter().zip(&reference.program().arrays) {
        assert_eq!(
            a.to_dense(),
            b.to_dense(),
            "{} must equal the uninterrupted run bit-for-bit",
            a.name()
        );
    }
    // fast-path restores preserve the mapping Arcs, so recovery never
    // re-inspects: one cold miss per statement, nothing more
    assert_eq!(prog.cache_misses(), 2, "plan cache must survive recovery");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The adaptive suite's hotspot workload: the sweep is confined to the
/// first quarter of a BLOCK-distributed pair (declared DYNAMIC), with a
/// 48-cell upwind gather so the controller's load-fitted
/// `GENERAL_BLOCK` deterministically wins the candidate pricing; a
/// copy-back compounds timesteps so a lost element diverges forever.
fn hotspot_program(n: i64, np: usize) -> Program {
    let mut ds = DataSpace::new(np);
    let a = ds.declare("A", IndexDomain::standard(&[(1, n)]).unwrap()).unwrap();
    let b = ds.declare("B", IndexDomain::standard(&[(1, n)]).unwrap()).unwrap();
    for id in [a, b] {
        ds.distribute(id, &DistributeSpec::new(vec![FormatSpec::Block])).unwrap();
        ds.set_dynamic(id);
    }
    let arrays = vec![
        DistArray::from_fn("A", ds.effective(a).unwrap(), np, |i| i[0] as f64),
        DistArray::from_fn("B", ds.effective(b).unwrap(), np, |i| (i[0] % 7) as f64),
    ];
    let doms: Vec<&IndexDomain> = arrays.iter().map(|x| x.domain()).collect();
    let (reach, hot) = (48, n / 4);
    let here = Section::from_triplets(vec![span(reach + 2, hot)]);
    let sweep = Assignment::new(
        0,
        here.clone(),
        vec![
            Term::new(0, Section::from_triplets(vec![span(2, hot - reach)])),
            Term::new(1, here.clone()),
        ],
        Combine::Sum,
        &doms,
    )
    .unwrap();
    let copy_back =
        Assignment::new(1, here.clone(), vec![Term::new(0, here)], Combine::Copy, &doms)
            .unwrap();
    let mut prog = Program::new(arrays);
    prog.push(sweep).unwrap();
    prog.push(copy_back).unwrap();
    prog
}

/// An injected kill *after* the adaptive controller's live remap: the
/// recovery restores the checkpoint written under the adapted
/// `GENERAL_BLOCK` layout, the trajectory converges to the
/// uninterrupted static run bit-for-bit, and the adapted layout itself
/// survives the restore — the controller never has to remap twice.
#[test]
fn adaptive_remap_survives_injected_kill() {
    let dir = tmpdir("adapt-kill");
    let steps = 6u64;
    let (n, np) = (65_536i64, 4usize);
    let mut reference = Session::new(hotspot_program(n, np));
    reference.run(steps).unwrap();

    let mut sess = Session::new(hotspot_program(n, np))
        .backend(Backend::Channels)
        .checkpoint(CheckpointSpec::new(&dir, 1))
        .adapt(AdaptPolicy::aggressive())
        .inject_faults(FaultPlan::new().with(Fault::KillWorker { rank: 2, step: 4 }));
    let rep = sess.run(steps).unwrap();
    assert_eq!(rep.timesteps, steps);
    assert_eq!(rep.failures, 1, "exactly the injected kill");
    assert!(!rep.degraded);

    let report = sess.adapt_report().expect("adapt configured").clone();
    assert!(report.remaps >= 1, "the hotspot must remap before the kill: {report:?}");
    assert!(
        report.events[0].candidate.starts_with("GENERAL_BLOCK"),
        "wide upwind reach prices CYCLIC out: {}",
        report.events[0].candidate
    );
    assert!(
        report.events[0].timestep < 4,
        "remap must land before the injected kill so the restore \
         exercises the adapted layout: {report:?}"
    );

    let prog = sess.into_program();
    assert_eq!(prog.faults_fired(), 1);
    for (a, b) in prog.arrays.iter().zip(&reference.program().arrays) {
        assert_eq!(
            a.to_dense(),
            b.to_dense(),
            "{} must equal the uninterrupted static run bit-for-bit",
            a.name()
        );
    }
    // the checkpoint was written under the post-remap mappings, so the
    // restore keeps the load-fitted layout in place
    assert!(
        format!("{:?}", prog.arrays[0].mapping()).contains("GeneralBlock"),
        "adapted layout must survive restore-and-replay"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Three consecutive fleet deaths exhaust the `Channels` retry budget
/// and the trajectory degrades to `SharedMem` — completing with the
/// same result instead of failing.
#[test]
fn repeated_fleet_death_degrades_to_shared_mem() {
    let dir = tmpdir("degrade");
    let steps = 4u64;
    let mut reference = Session::new(build_program((1, 3), 35, 5));
    reference.run(steps).unwrap();

    // a failed superstep does not advance the backend's step counter, so
    // each retry replays step 0 and consumes the next identical kill —
    // three *consecutive* failures
    let mut sess = Session::new(build_program((1, 3), 35, 5))
        .backend(Backend::Channels)
        .checkpoint(CheckpointSpec::new(&dir, 1))
        .inject_faults(
            FaultPlan::new()
                .with(Fault::KillWorker { rank: 1, step: 0 })
                .with(Fault::KillWorker { rank: 1, step: 0 })
                .with(Fault::KillWorker { rank: 1, step: 0 }),
        );
    let rep = sess.run(steps).unwrap();
    assert_eq!(rep.timesteps, steps);
    assert_eq!(rep.failures, 3);
    assert!(rep.degraded, "three consecutive failures must degrade");
    assert_eq!(rep.final_backend, Backend::SharedMem);
    for (a, b) in sess.program().arrays.iter().zip(&reference.program().arrays) {
        assert_eq!(a.to_dense(), b.to_dense(), "{} after degradation", a.name());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Without a checkpoint to restore from, the typed fault propagates to
/// the caller instead of hanging or panicking — and it names the rank
/// and superstep.
#[test]
fn fault_without_checkpoint_is_a_typed_error() {
    let mut sess = Session::new(build_program((0, 1), 25, 4))
        .backend(Backend::Channels)
        .inject_faults(FaultPlan::new().with(Fault::KillWorker { rank: 2, step: 0 }));
    let err = sess.run(3).unwrap_err();
    match err {
        HpfError::Exchange { rank, step, ref reason } => {
            assert_eq!(rank, Some(2));
            assert_eq!(step, 0);
            assert!(reason.contains("died"), "got reason {reason:?}");
        }
        other => panic!("expected HpfError::Exchange, got {other}"),
    }
}

/// A dropped message wedges the superstep; the driver's timeout turns
/// it into a typed error in bounded time rather than hanging forever.
#[test]
fn dropped_message_times_out_with_typed_error() {
    let mut sess = Session::new(build_program((0, 0), 25, 4))
        .backend(Backend::Channels)
        .exchange_timeout(Duration::from_millis(250))
        .inject_faults(FaultPlan::new().with(Fault::DropMessage {
            sender: 0,
            receiver: 1,
            step: 0,
        }));
    let err = sess.run(1).unwrap_err();
    assert!(
        matches!(err, HpfError::Exchange { rank: None, step: 0, .. }),
        "got {err}"
    );
    // the fleet was torn down and respawns clean: replay converges
    let mut reference = Session::new(build_program((0, 0), 25, 4));
    reference.run(1).unwrap();
    // lost shards must be restored before replaying — use a checkpoint
    // of the initial state
    let dir = tmpdir("drop");
    let init = build_program((0, 0), 25, 4);
    save_checkpoint(&init.arrays, 0, &dir).unwrap();
    sess.program_mut().restore_latest(&dir).unwrap();
    sess.run(1).unwrap();
    for (a, b) in sess.program().arrays.iter().zip(&reference.program().arrays) {
        assert_eq!(a.to_dense(), b.to_dense());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Delay and pool-poison faults are *survivable*: the step completes
/// correctly (the poisoned pool mutex is recovered via `into_inner`),
/// no error surfaces, and the fault counter proves they actually fired.
#[test]
fn delay_and_pool_poison_are_survived_in_place() {
    let mut reference = Session::new(build_program((2, 0), 31, 4));
    reference.run(3).unwrap();
    let mut sess = Session::new(build_program((2, 0), 31, 4))
        .backend(Backend::Channels)
        .inject_faults(
            FaultPlan::new()
                .with(Fault::DelayMessage { sender: 0, receiver: 1, step: 0, millis: 30 })
                .with(Fault::PoisonPool { rank: 1, step: 1 }),
        );
    sess.run(3).unwrap();
    let prog = sess.into_program();
    assert_eq!(prog.faults_fired(), 2, "both faults must actually fire");
    for (a, b) in prog.arrays.iter().zip(&reference.program().arrays) {
        assert_eq!(a.to_dense(), b.to_dense());
    }
}

/// Corruption diagnostics: a flipped payload bit is caught by the
/// shard checksum, a truncated manifest by the `end` sentinel — both
/// *before* any element is written.
#[test]
fn corrupted_checkpoints_are_rejected_with_diagnostics() {
    let dir = tmpdir("reject");
    let mut prog = build_program((0, 1), 25, 4);
    let rep = prog.checkpoint(&dir, 1).unwrap();

    // flip one payload bit in a shard
    let shard = rep.dir.join("A.p0.shard");
    let mut bytes = std::fs::read(&shard).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&shard, &bytes).unwrap();
    let before: Vec<Vec<f64>> = prog.arrays.iter().map(DistArray::to_dense).collect();
    let err = prog.restore_checkpoint(&rep.dir).unwrap_err();
    assert!(err.to_string().contains("checksum mismatch"), "got {err}");
    for (a, w) in prog.arrays.iter().zip(&before) {
        assert_eq!(&a.to_dense(), w, "a rejected restore must not write anything");
    }

    // truncate the manifest below its `end` sentinel
    let manifest = rep.dir.join("manifest.txt");
    let text = std::fs::read_to_string(&manifest).unwrap();
    let cut = text.rfind("end").unwrap();
    std::fs::write(&manifest, &text[..cut]).unwrap();
    let err = prog.restore_checkpoint(&rep.dir).unwrap_err();
    assert!(err.to_string().contains("no `end`"), "got {err}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `restore_latest` on an empty directory is the precise
/// "nothing to restore" diagnostic, not a panic or a silent no-op.
#[test]
fn restore_latest_reports_missing_checkpoints() {
    let dir = tmpdir("none");
    let mut prog = build_program((0, 1), 25, 4);
    let err = prog.restore_latest(&dir.join("empty")).unwrap_err();
    assert!(matches!(err, CkptError::NoCheckpoint { .. }), "got {err}");
    let _ = std::fs::remove_dir_all(&dir);
}
