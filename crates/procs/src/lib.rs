//! # hpf-procs — processor arrangements and the abstract processor space
//!
//! Implements §3 of Chapman, Mehrotra & Zima, *"High Performance Fortran
//! Without Templates"* (PPoPP 1993):
//!
//! > Each implementation of HPF determines uniquely an **implicit abstract
//! > processor arrangement, AP**, which specifies a linear numbering scheme
//! > for the physical processors of the underlying machine. [...] Each
//! > processor arrangement is mapped to AP in the same way as storage
//! > association is defined for the Fortran 90 EQUIVALENCE statement, with
//! > abstract processors playing the role of the storage units.
//!
//! The crate provides:
//!
//! * [`ProcId`] — a 1-based abstract processor number in AP.
//! * [`ProcSpace`] — the AP plus all declared arrangements.
//! * [`ProcArrangement`] — a named **processor array arrangement** (with an
//!   index domain) or **conceptually scalar arrangement**, each mapped onto
//!   AP column-major at an equivalence offset.
//! * [`ProcTarget`] — a distribution target: an arrangement or a *section*
//!   of one (the paper's generalization "arrays may be distributed to
//!   processor sections").
//! * [`ScalarPolicy`] — the three §3 options for where data mapped to a
//!   scalar arrangement lives (control processor / arbitrary / replicated).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arrangement;
mod error;
mod space;
mod target;

pub use arrangement::{ArrangementId, ArrangementKind, ProcArrangement, ScalarPolicy};
pub use error::ProcsError;
pub use space::ProcSpace;
pub use target::ProcTarget;

use std::fmt;

/// A 1-based abstract processor number in the implicit linear arrangement
/// AP (the paper numbers processors `1..NP`, matching Fortran convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub u32);

impl ProcId {
    /// 0-based position in AP (for indexing Rust-side vectors).
    pub fn zero_based(self) -> usize {
        (self.0 - 1) as usize
    }

    /// Build from a 0-based position.
    pub fn from_zero_based(p: usize) -> Self {
        ProcId(p as u32 + 1)
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}
