//! # hpf-verify — prove compiled plans safe before they run
//!
//! The public surface of the static schedule verifier: the analysis pass
//! itself lives in `hpf-runtime` (so the [`PlanCache`] can run it on every
//! plan insertion without a dependency cycle); this crate re-exports it,
//! packages the workspace's example programs as verifiable
//! [`scenarios`], and ships the `hpf-lint` binary that runs the full pass
//! from the command line:
//!
//! ```text
//! cargo run --release -p hpf-verify --bin hpf-lint          # all scenarios
//! cargo run --release -p hpf-verify --bin hpf-lint -- quickstart
//! ```
//!
//! Five properties are decided per statement, each refutation carrying
//! exact processor/run/segment coordinates:
//!
//! 1. **write coverage** — store runs tile every processor's owned LHS
//!    section exactly (no gap, overlap, or stray write);
//! 2. **bounds** — every [`CopyRun`](hpf_runtime::CopyRun) /
//!    [`MsgSegment`](hpf_runtime::MsgSegment) source and destination stays
//!    inside the owning shard and pack-buffer extents, and addresses the
//!    statement-named element;
//! 3. **race freedom** — disjoint worker store sets, and a sound
//!    pack → exchange → compute happens-before order (RAW/WAR hazards);
//! 4. **deadlock freedom** — the pair schedules form a schedulable BSP
//!    superstep with matched sends/receives and equal byte counts;
//! 5. **conservation** — wire bytes over pairs equal the frozen
//!    [`CommAnalysis`](hpf_runtime::CommAnalysis) totals, with replicated
//!    mappings reported as an explicit
//!    [`AnalysisVerdict::ReplicatedDivergence`] instead of being skipped.
//!
//! [`PlanCache`]: hpf_runtime::PlanCache

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scenarios;

pub use hpf_runtime::{
    verify_plan, AnalysisVerdict, Diagnostic, DiagnosticKind, Property, StatementReport,
    VerifyReport, VerifyStats,
};
