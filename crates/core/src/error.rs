use hpf_index::IndexError;
use hpf_procs::ProcsError;
use std::fmt;

/// Errors produced by the distribution/alignment model.
///
/// Each variant that encodes a *language rule* carries the paper section
/// that states the rule, so diagnostics read like conformance reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HpfError {
    /// An index-domain operation failed.
    Index(IndexError),
    /// A processor-space operation failed.
    Procs(ProcsError),

    // ---- DISTRIBUTE (§4) ----
    /// §4.1: "The length of this list must be n" — the distribution format
    /// list must have one entry per array dimension.
    FormatListRank {
        /// Array being distributed.
        array: String,
        /// Number of formats supplied.
        formats: usize,
        /// Rank of the array.
        rank: usize,
    },
    /// §4.1: "The rank of R must be n, reduced by the number of colons" —
    /// non-collapsed dimensions must match the target rank.
    TargetRank {
        /// Array being distributed.
        array: String,
        /// Number of non-colon formats.
        distributed_dims: usize,
        /// Rank of the distribution target.
        target_rank: usize,
    },
    /// §4.1.2: a `GENERAL_BLOCK(G)` bound array was malformed.
    BadGeneralBlock(String),
    /// §4.1.3: `CYCLIC(k)` requires `k ≥ 1`.
    BadCyclicArg(i64),
    /// An `INDIRECT` (extension) map did not cover the whole dimension.
    BadIndirectMap(String),

    // ---- ALIGN (§5) ----
    /// The alignee axis list does not match the alignee's rank.
    AligneeRank {
        /// The alignee array.
        array: String,
        /// Axes supplied in the directive.
        axes: usize,
        /// Rank of the alignee.
        rank: usize,
    },
    /// The base subscript list does not match the base's rank.
    BaseRank {
        /// The alignment base array.
        array: String,
        /// Subscripts supplied in the directive.
        subscripts: usize,
        /// Rank of the base.
        rank: usize,
    },
    /// §5.1: a `:` alignee axis must fit in its matching base triplet
    /// (`U−L+1 ≤ MAX(INT(UT−LT+ST)/ST, 0)`).
    ColonExtent {
        /// Alignee dimension (0-based).
        dim: usize,
        /// Alignee extent.
        alignee: usize,
        /// Matching triplet length.
        triplet: usize,
    },
    /// §5.1: the number of `:` alignee axes must equal the number of
    /// subscript triplets in the base.
    ColonTripletCount {
        /// Colons in the alignee.
        colons: usize,
        /// Triplets in the base.
        triplets: usize,
    },
    /// §5.1: "Each J_i may occur in at most one y_j (this excludes the
    /// possibility to specify skew alignments)".
    DummyReused(usize),
    /// A base subscript used a dummy that no alignee axis declares.
    UnknownDummy(usize),
    /// A base subscript expression used more than one dummy (skew).
    SkewExpression,
    /// An alignment expression was not evaluable (e.g. division by zero in
    /// a folded spec expression).
    BadAlignExpr(String),

    // ---- alignment forest (§2.4, §4.2, §5.2, §6) ----
    /// No array of this name/id exists in the data space.
    UnknownArray(String),
    /// An array of this name already exists in the scope.
    DuplicateArray(String),
    /// §2.4 constraint 1: "Each array occurring as an alignment base must
    /// not be aligned to another array."
    BaseIsSecondary(String),
    /// §2.4 constraint 1 (dual): an array that serves as an alignment base
    /// cannot itself become an alignee in the specification part.
    AligneeHasChildren(String),
    /// §2.4 constraint 2: "Each array occurring as an alignee can be
    /// aligned with only one alignment base."
    AlreadyAligned(String),
    /// A `DISTRIBUTE` was applied to a secondary array (only primary
    /// arrays carry direct distributions, §2.4).
    NotPrimary(String),
    /// An array received two mapping directives in the specification part.
    AlreadyMapped(String),
    /// §4.2/§5.2: `REDISTRIBUTE`/`REALIGN` "may only be used for arrays
    /// that have been declared as DYNAMIC".
    NotDynamic(String),
    /// The operation requires the array to be currently created/allocated.
    NotAllocated(String),
    /// `ALLOCATE` on an array that is already allocated.
    AlreadyAllocated(String),
    /// `ALLOCATE`/`DEALLOCATE` on an array without the ALLOCATABLE
    /// attribute.
    NotAllocatable(String),
    /// The allocation shape's rank differs from the declared rank.
    AllocRank {
        /// The array being allocated.
        array: String,
        /// Declared rank.
        declared: usize,
        /// Rank of the allocation shape.
        given: usize,
    },
    /// §6: "a local array which is not declared ALLOCATABLE cannot be
    /// aligned in the specification-part of a program unit to an
    /// allocatable array."
    StaticAlignedToAllocatable {
        /// The static alignee.
        alignee: String,
        /// The allocatable base.
        base: String,
    },

    // ---- procedures (§7) ----
    /// §7 case 3 (inheritance matching): the incoming distribution does not
    /// match the specification, and no interface block allows remapping —
    /// "the program is not HPF-conforming".
    DistributionMismatch {
        /// The dummy argument.
        dummy: String,
        /// Human-readable reason.
        reason: String,
    },
    /// Number of actuals differs from the number of dummies.
    ArgumentCount {
        /// Procedure name.
        procedure: String,
        /// Dummies declared.
        dummies: usize,
        /// Actuals supplied.
        actuals: usize,
    },
    /// Actual argument rank differs from dummy rank.
    ArgumentRank {
        /// The dummy argument.
        dummy: String,
        /// Dummy rank.
        expected: usize,
        /// Actual rank.
        found: usize,
    },
    /// Generic non-conformance with a rule reference.
    NotConforming(String),

    // ---- execution faults ----
    /// A runtime exchange failed mid-superstep (worker death, dropped or
    /// corrupted message, wedged fleet). What used to be a process abort:
    /// carries the failing rank when one could be identified so recovery
    /// can target it, and the backend's superstep counter at detection
    /// time so a replay knows where the trajectory broke.
    Exchange {
        /// Zero-based rank the failure was pinned to, if identifiable.
        rank: Option<u32>,
        /// The backend's superstep counter when the failure was detected.
        step: u64,
        /// Rendered failure description (the runtime's typed
        /// `ExchangeError`, stringified at the crate boundary).
        reason: String,
    },
}

impl fmt::Display for HpfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use HpfError::*;
        match self {
            Index(e) => write!(f, "{e}"),
            Procs(e) => write!(f, "{e}"),
            FormatListRank { array, formats, rank } => write!(
                f,
                "§4.1: array `{array}` has rank {rank} but the distribution format list \
                 has {formats} entries"
            ),
            TargetRank { array, distributed_dims, target_rank } => write!(
                f,
                "§4.1: array `{array}` distributes {distributed_dims} dimension(s) but the \
                 target has rank {target_rank}"
            ),
            BadGeneralBlock(r) => write!(f, "§4.1.2: invalid GENERAL_BLOCK bound array: {r}"),
            BadCyclicArg(k) => write!(f, "§4.1.3: CYCLIC({k}) requires k ≥ 1"),
            BadIndirectMap(r) => write!(f, "invalid INDIRECT map: {r}"),
            AligneeRank { array, axes, rank } => write!(
                f,
                "§5: alignee `{array}` has rank {rank} but {axes} axes were specified"
            ),
            BaseRank { array, subscripts, rank } => write!(
                f,
                "§5: alignment base `{array}` has rank {rank} but {subscripts} subscripts \
                 were specified"
            ),
            ColonExtent { dim, alignee, triplet } => write!(
                f,
                "§5.1: alignee dimension {} (extent {alignee}) exceeds its matching \
                 subscript triplet (length {triplet})",
                dim + 1
            ),
            ColonTripletCount { colons, triplets } => write!(
                f,
                "§5.1: {colons} ':' alignee axes but {triplets} subscript triplets in the base"
            ),
            DummyReused(d) => write!(
                f,
                "§5.1: align-dummy #{d} occurs in more than one base subscript \
                 (skew alignments are excluded)"
            ),
            UnknownDummy(d) => write!(f, "§5: base subscript uses undeclared align-dummy #{d}"),
            SkewExpression => write!(
                f,
                "§5.1: a base subscript expression may use at most one align-dummy"
            ),
            BadAlignExpr(r) => write!(f, "§5.1: invalid alignment expression: {r}"),
            UnknownArray(n) => write!(f, "unknown array `{n}`"),
            DuplicateArray(n) => write!(f, "array `{n}` already declared in this scope"),
            BaseIsSecondary(n) => write!(
                f,
                "§2.4(1): `{n}` is aligned to another array and therefore cannot be used \
                 as an alignment base"
            ),
            AligneeHasChildren(n) => write!(
                f,
                "§2.4(1): `{n}` is an alignment base and therefore cannot be aligned \
                 to another array"
            ),
            AlreadyAligned(n) => write!(
                f,
                "§2.4(2): `{n}` is already aligned to an alignment base"
            ),
            NotPrimary(n) => write!(
                f,
                "§2.4: `{n}` is a secondary array; only primary arrays may be \
                 distributed directly"
            ),
            AlreadyMapped(n) => write!(
                f,
                "array `{n}` already has a mapping directive in this specification part"
            ),
            NotDynamic(n) => write!(
                f,
                "§4.2/§5.2: `{n}` was not declared DYNAMIC and cannot be \
                 redistributed/realigned"
            ),
            NotAllocated(n) => write!(f, "array `{n}` is not currently allocated"),
            AlreadyAllocated(n) => write!(f, "array `{n}` is already allocated"),
            NotAllocatable(n) => write!(f, "array `{n}` lacks the ALLOCATABLE attribute"),
            AllocRank { array, declared, given } => write!(
                f,
                "ALLOCATE `{array}`: declared rank {declared}, allocation rank {given}"
            ),
            StaticAlignedToAllocatable { alignee, base } => write!(
                f,
                "§6: static array `{alignee}` cannot be aligned in the specification part \
                 to allocatable array `{base}`"
            ),
            DistributionMismatch { dummy, reason } => write!(
                f,
                "§7(3): distribution of actual does not match the specification for \
                 dummy `{dummy}`: {reason} (program is not HPF-conforming)"
            ),
            ArgumentCount { procedure, dummies, actuals } => write!(
                f,
                "call to `{procedure}`: {dummies} dummy argument(s), {actuals} actual(s)"
            ),
            ArgumentRank { dummy, expected, found } => write!(
                f,
                "dummy `{dummy}` has rank {expected} but the actual has rank {found}"
            ),
            NotConforming(r) => write!(f, "program not conforming: {r}"),
            Exchange { reason, .. } => write!(f, "exchange fault: {reason}"),
        }
    }
}

impl std::error::Error for HpfError {}

impl From<IndexError> for HpfError {
    fn from(e: IndexError) -> Self {
        HpfError::Index(e)
    }
}

impl From<ProcsError> for HpfError {
    fn from(e: ProcsError) -> Self {
        HpfError::Procs(e)
    }
}
