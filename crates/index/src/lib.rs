//! # hpf-index — index domains and regular-section algebra
//!
//! This crate implements §2.1 of Chapman, Mehrotra & Zima,
//! *"High Performance Fortran Without Templates"* (PPoPP 1993):
//!
//! > An index domain `I` of rank (dimension) `n` is an ordered set of
//! > subscript tuples that can be represented by a subscript-triplet-list
//! > of length `n`. [...] `I` is called a *standard* index domain iff the
//! > stride in each subscript triplet is 1.
//!
//! The crate provides:
//!
//! * [`Triplet`] — Fortran 90 subscript triplets `l:u:s` as explicit
//!   arithmetic-progression sets, with full set algebra (membership,
//!   intersection via extended gcd, affine images).
//! * [`Idx`] — an inline, non-allocating subscript tuple of rank ≤
//!   [`MAX_RANK`].
//! * [`IndexDomain`] — rank-*n* index domains with Fortran column-major
//!   linearization and iteration.
//! * [`Section`] / [`SectionDim`] — array sections (`A(2:996:2)`,
//!   `A(3, :)`), including rank-reducing scalar subscripts.
//! * [`Rect`] and [`Region`] — rectilinear unions of strided boxes, the
//!   algebra with which distribution inverses and communication sets are
//!   computed.
//!
//! Everything downstream (distribution functions, alignment functions, the
//! runtime's communication sets) is expressed in terms of these types, so
//! their operations are written to be exact (no floating point), overflow
//! checked via `i128` intermediates, and allocation-free on the per-element
//! hot paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod domain;
mod error;
mod gcd;
mod idx;
mod region;
mod section;
mod triplet;

pub use domain::{ColumnMajorIter, IndexDomain};
pub use error::IndexError;
pub use gcd::{extended_gcd, gcd, lcm, solve_crt};
pub use idx::{Idx, MAX_RANK};
pub use region::{Rect, RectIter, Region};
pub use section::{Section, SectionDim};
pub use triplet::Triplet;

/// Convenience constructor for a [`Triplet`]: `triplet(l, u, s)`.
///
/// # Panics
/// Panics if `s == 0`; use [`Triplet::new`] for a fallible version.
pub fn triplet(lower: i64, upper: i64, stride: i64) -> Triplet {
    Triplet::new(lower, upper, stride).expect("stride must be nonzero")
}

/// Convenience constructor for a stride-1 [`Triplet`]: `span(l, u)`.
pub fn span(lower: i64, upper: i64) -> Triplet {
    Triplet::unit(lower, upper)
}
