//! E4 — GENERAL_BLOCK: cost of computing a weight-balanced partition
//! (binary search + greedy) and of binding it, across workload sizes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hpf_bench::{random_weights, triangular_weights};
use hpf_core::GeneralBlock;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("general_block_balance");
    for n in [10_000usize, 100_000, 1_000_000] {
        let tri = triangular_weights(n);
        g.bench_with_input(BenchmarkId::new("triangular", n), &n, |b, _| {
            b.iter(|| black_box(GeneralBlock::balanced(&tri, 64).unwrap()))
        });
        let rnd = random_weights(n, 1000, 42);
        g.bench_with_input(BenchmarkId::new("random", n), &n, |b, _| {
            b.iter(|| black_box(GeneralBlock::balanced(&rnd, 64).unwrap()))
        });
    }
    // owner lookup for the bound format is benchmarked in b01
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
