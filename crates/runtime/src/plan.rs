//! Compiled execution plans — the **inspector** half of an
//! inspector–executor runtime.
//!
//! The paper's central payoff is that distribution/alignment information
//! makes communication sets *statically computable* (§1, §8.1.1). This
//! module exploits that at execution time the way HPF-descended runtimes
//! do: an [`ExecPlan`] is inspected **once** from an [`Assignment`] and the
//! arrays' [`EffectiveDist`] mappings, and then replayed every timestep.
//!
//! A plan contains, per simulated processor:
//!
//! * the **precomputed flat offsets** into the LHS local buffer of every
//!   element the processor computes (owner-computes rule), and
//! * per RHS term, a **gather schedule**: for each element read, the owning
//!   processor and flat offset in that owner's local buffer — local reads
//!   point back into the processor's own segment, remote reads are the
//!   statement's *ghost elements* (SUPERB-style overlap areas, the paper's
//!   reference \[11\]).
//!
//! Execution is then pack → exchange → compute: each processor's operand
//! buffers are assembled from its own local segment plus ghost data only —
//! there is **no dense global snapshot** anywhere on the path, so the cost
//! per replay is O(elements computed + elements read), independent of how
//! many ownership lookups inspection needed. The frozen [`CommAnalysis`]
//! rides along, so replays also skip the region-algebraic analysis.

use crate::array::DistArray;
use crate::assign::{Assignment, Combine};
use crate::commsets::{comm_analysis, project_region, CommAnalysis};
use hpf_core::{HpfError, MappingId};
use hpf_index::IndexDomain;
use hpf_procs::ProcId;
use std::sync::Arc;

/// One gather source: which processor's local buffer to read, and where.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatherRef {
    /// Zero-based source processor.
    pub src: u32,
    /// Flat offset into the source processor's local buffer.
    pub offset: usize,
}

/// The gather schedule of one processor for one RHS term.
#[derive(Debug, Clone)]
pub struct TermSchedule {
    /// Index of the operand array.
    pub array: usize,
    /// One source per element computed, in the processor's element order.
    pub sources: Vec<GatherRef>,
    /// How many of the sources are remote — the term's ghost volume on
    /// this processor.
    pub ghost_elements: usize,
}

/// Everything one processor must do to execute the statement: which LHS
/// slots it fills and where each operand element comes from.
#[derive(Debug, Clone)]
pub struct ProcPlan {
    /// The processor.
    pub proc: ProcId,
    /// Flat offsets into the LHS local buffer, one per computed element.
    pub lhs_offsets: Vec<usize>,
    /// Per-term gather schedules (parallel to the statement's terms).
    pub terms: Vec<TermSchedule>,
}

impl ProcPlan {
    /// Total ghost elements this processor receives across all terms.
    pub fn ghost_elements(&self) -> usize {
        self.terms.iter().map(|t| t.ghost_elements).sum()
    }
}

/// A compiled execution plan for one assignment under fixed mappings.
///
/// Built by [`ExecPlan::inspect`]; replayed by [`ExecPlan::execute_seq`] /
/// [`ExecPlan::execute_par`]. A plan is bound to the exact
/// `Arc<EffectiveDist>` allocations it was inspected from (see
/// [`MappingId`]); [`ExecPlan::is_valid_for`] checks that binding, and the
/// executors assert it, so a remapped array can never be driven through a
/// stale schedule.
#[derive(Debug, Clone)]
pub struct ExecPlan {
    lhs: usize,
    combine: Combine,
    per_proc: Vec<ProcPlan>,
    analysis: CommAnalysis,
    /// Identity of every involved array's mapping at inspection time.
    mappings: Vec<(usize, MappingId)>,
}

impl ExecPlan {
    /// Inspect `stmt` over `arrays`: validate conformance, lower the
    /// owner-computes iteration into per-processor flat offsets and gather
    /// schedules, and freeze the exact communication analysis.
    pub fn inspect(
        arrays: &[DistArray<f64>],
        stmt: &Assignment,
    ) -> Result<ExecPlan, HpfError> {
        let domains: Vec<&IndexDomain> = arrays.iter().map(|a| a.domain()).collect();
        stmt.validate(&domains)?;
        let np = arrays[stmt.lhs].np();

        let mut per_proc = Vec::with_capacity(np);
        for p in (1..=np as u32).map(ProcId) {
            let lhs_arr = &arrays[stmt.lhs];
            // the section-relative positions this processor computes
            let positions = project_region(lhs_arr.region_of(p), &stmt.lhs_section);
            let volume = positions.volume_disjoint();
            let mut lhs_offsets = Vec::with_capacity(volume);
            for rel in positions.iter() {
                let gi = stmt.lhs_index(&rel);
                lhs_offsets.push(
                    lhs_arr.local_offset(p, &gi).expect("owner holds its region"),
                );
            }
            let mut terms = Vec::with_capacity(stmt.terms.len());
            for (t, term) in stmt.terms.iter().enumerate() {
                let src_arr = &arrays[term.array];
                let own = src_arr.region_of(p);
                let mut sources = Vec::with_capacity(volume);
                let mut ghost_elements = 0usize;
                for rel in positions.iter() {
                    let ri = stmt.rhs_index(t, &rel);
                    // prefer the processor's own copy (replication makes
                    // ownership non-exclusive); otherwise gather from the
                    // first owner — a ghost element
                    let src = if own.contains(&ri) {
                        p
                    } else {
                        ghost_elements += 1;
                        src_arr.mapping().owner(&ri)
                    };
                    let offset = src_arr
                        .local_offset(src, &ri)
                        .expect("owner holds its region");
                    sources.push(GatherRef { src: src.zero_based() as u32, offset });
                }
                terms.push(TermSchedule { array: term.array, sources, ghost_elements });
            }
            per_proc.push(ProcPlan { proc: p, lhs_offsets, terms });
        }

        let maps: Vec<Arc<hpf_core::EffectiveDist>> =
            arrays.iter().map(|a| a.mapping().clone()).collect();
        let analysis = comm_analysis(&maps, np, stmt);

        let mut involved = vec![stmt.lhs];
        involved.extend(stmt.terms.iter().map(|t| t.array));
        involved.sort_unstable();
        involved.dedup();
        let mappings = involved
            .into_iter()
            .map(|k| (k, MappingId::of(arrays[k].mapping())))
            .collect();

        Ok(ExecPlan { lhs: stmt.lhs, combine: stmt.combine, per_proc, analysis, mappings })
    }

    /// The frozen communication analysis of the statement.
    pub fn analysis(&self) -> &CommAnalysis {
        &self.analysis
    }

    /// The per-processor schedules.
    pub fn per_proc(&self) -> &[ProcPlan] {
        &self.per_proc
    }

    /// Index of the LHS array.
    pub fn lhs(&self) -> usize {
        self.lhs
    }

    /// Identity of every involved array's mapping at inspection time.
    pub fn mappings(&self) -> &[(usize, MappingId)] {
        &self.mappings
    }

    /// Total ghost elements exchanged per replay, over all processors.
    pub fn ghost_elements(&self) -> usize {
        self.per_proc.iter().map(ProcPlan::ghost_elements).sum()
    }

    /// True iff every involved array still carries the exact mapping
    /// allocation the plan was inspected from.
    pub fn is_valid_for(&self, arrays: &[DistArray<f64>]) -> bool {
        self.mappings
            .iter()
            .all(|(k, id)| arrays.get(*k).is_some_and(|a| id.is(a.mapping())))
    }

    /// Pack phase for one processor: assemble its per-term operand buffers
    /// from its own local segment plus ghost data.
    fn pack(&self, arrays: &[DistArray<f64>], pp: &ProcPlan) -> Vec<Vec<f64>> {
        pp.terms
            .iter()
            .map(|ts| {
                let src_arr = &arrays[ts.array];
                ts.sources
                    .iter()
                    .map(|g| src_arr.local(g.src as usize)[g.offset])
                    .collect()
            })
            .collect()
    }

    /// Replay the plan sequentially: pack/exchange every processor's
    /// operand buffers (reads only — Fortran 90 semantics even when the
    /// LHS appears on the RHS), then compute into the LHS local buffers.
    ///
    /// # Panics
    /// Panics if the plan is stale for `arrays` (see
    /// [`ExecPlan::is_valid_for`]).
    pub fn execute_seq(&self, arrays: &mut [DistArray<f64>]) {
        assert!(self.is_valid_for(arrays), "stale plan: an involved array was remapped");
        let packed: Vec<Vec<Vec<f64>>> =
            self.per_proc.iter().map(|pp| self.pack(arrays, pp)).collect();
        let (_, locals) = arrays[self.lhs].parts_mut();
        for (pp, bufs) in self.per_proc.iter().zip(&packed) {
            compute_proc(pp, &mut locals[pp.proc.zero_based()], bufs, self.combine);
        }
    }

    /// Replay the plan with the compute phase spread over `threads` OS
    /// threads, one simulated processor's local buffer per unit of work —
    /// bit-identical to [`ExecPlan::execute_seq`].
    ///
    /// # Panics
    /// Panics if the plan is stale for `arrays` (see
    /// [`ExecPlan::is_valid_for`]).
    pub fn execute_par(&self, arrays: &mut [DistArray<f64>], threads: usize) {
        assert!(self.is_valid_for(arrays), "stale plan: an involved array was remapped");
        let threads = threads.max(1);
        let packed: Vec<Vec<Vec<f64>>> =
            self.per_proc.iter().map(|pp| self.pack(arrays, pp)).collect();
        let (_, locals) = arrays[self.lhs].parts_mut();
        // per_proc is ordered 1..=np, matching the local-buffer order
        let mut work: Vec<ProcWork<'_>> = self
            .per_proc
            .iter()
            .zip(&packed)
            .zip(locals.iter_mut())
            .map(|((pp, bufs), local)| (pp, bufs, local))
            .collect();
        let chunk = work.len().div_ceil(threads).max(1);
        let mut batches: Vec<Vec<ProcWork<'_>>> = Vec::new();
        while !work.is_empty() {
            let rest = work.split_off(chunk.min(work.len()));
            batches.push(std::mem::replace(&mut work, rest));
        }
        let combine = self.combine;
        crossbeam::thread::scope(|scope| {
            for mut batch in batches {
                scope.spawn(move |_| {
                    for (pp, bufs, local) in batch.iter_mut() {
                        compute_proc(pp, local, bufs, combine);
                    }
                });
            }
        })
        .expect("worker thread panicked");
    }
}

/// One unit of parallel compute work: a processor's schedule, its packed
/// operand buffers, and its LHS local buffer.
type ProcWork<'a> = (&'a ProcPlan, &'a Vec<Vec<f64>>, &'a mut Vec<f64>);

/// Compute phase for one processor: combine the packed operand buffers
/// element by element into the precomputed LHS slots.
fn compute_proc(pp: &ProcPlan, local: &mut [f64], bufs: &[Vec<f64>], combine: Combine) {
    let mut vals = vec![0.0f64; bufs.len()];
    for (k, &off) in pp.lhs_offsets.iter().enumerate() {
        for (v, b) in vals.iter_mut().zip(bufs) {
            *v = b[k];
        }
        local[off] = combine.apply(&vals);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::Term;
    use crate::exec::dense_reference;
    use crate::ghost::ghost_regions;
    use hpf_core::{DataSpace, DistributeSpec, FormatSpec};
    use hpf_index::{span, Section};

    fn setup(n: usize, np: usize, fmts: &[FormatSpec]) -> Vec<DistArray<f64>> {
        let mut ds = DataSpace::new(np);
        let mut out = Vec::new();
        for (k, f) in fmts.iter().enumerate() {
            let name = format!("A{k}");
            let id = ds.declare(&name, IndexDomain::of_shape(&[n]).unwrap()).unwrap();
            ds.distribute(id, &DistributeSpec::new(vec![f.clone()])).unwrap();
            out.push(DistArray::from_fn(
                &name,
                ds.effective(id).unwrap(),
                np,
                |i| (i[0] * (k as i64 + 3)) as f64,
            ));
        }
        out
    }

    fn shift_stmt(n: i64, arrays: &[DistArray<f64>]) -> Assignment {
        let doms: Vec<&IndexDomain> = arrays.iter().map(|a| a.domain()).collect();
        Assignment::new(
            0,
            Section::from_triplets(vec![span(2, n)]),
            vec![Term::new(1, Section::from_triplets(vec![span(1, n - 1)]))],
            Combine::Copy,
            &doms,
        )
        .unwrap()
    }

    #[test]
    fn plan_replay_matches_reference() {
        let mut arrays = setup(40, 4, &[FormatSpec::Block, FormatSpec::Cyclic(3)]);
        let stmt = shift_stmt(40, &arrays);
        let plan = ExecPlan::inspect(&arrays, &stmt).unwrap();
        let expect = dense_reference(&arrays, &stmt);
        plan.execute_seq(&mut arrays);
        assert_eq!(arrays[0].to_dense(), expect);
        // replay again on the mutated state — still the dense semantics
        let expect2 = dense_reference(&arrays, &stmt);
        plan.execute_seq(&mut arrays);
        assert_eq!(arrays[0].to_dense(), expect2);
    }

    #[test]
    fn plan_ghosts_match_region_algebra() {
        let arrays = setup(64, 4, &[FormatSpec::Block, FormatSpec::Block]);
        let stmt = shift_stmt(64, &arrays);
        let plan = ExecPlan::inspect(&arrays, &stmt).unwrap();
        let maps: Vec<_> = arrays.iter().map(|a| a.mapping().clone()).collect();
        let ghosts = ghost_regions(&maps, 4, &stmt);
        for (pp, g) in plan.per_proc().iter().zip(&ghosts) {
            assert_eq!(pp.ghost_elements(), g.volume, "{}", pp.proc);
        }
        // and both agree with the frozen analysis's remote reads
        assert_eq!(plan.ghost_elements() as u64, plan.analysis().remote_reads);
    }

    #[test]
    fn aliasing_shift_reads_old_values() {
        // A(2:16) = A(1:15) with the LHS on the RHS: pack-before-compute
        // must preserve Fortran array-assignment semantics
        let mut arrays = setup(16, 4, &[FormatSpec::Block]);
        let doms: Vec<&IndexDomain> = arrays.iter().map(|a| a.domain()).collect();
        let stmt = Assignment::new(
            0,
            Section::from_triplets(vec![span(2, 16)]),
            vec![Term::new(0, Section::from_triplets(vec![span(1, 15)]))],
            Combine::Copy,
            &doms,
        )
        .unwrap();
        let expect = dense_reference(&arrays, &stmt);
        ExecPlan::inspect(&arrays, &stmt).unwrap().execute_seq(&mut arrays);
        assert_eq!(arrays[0].to_dense(), expect);
    }

    #[test]
    fn stale_plan_detected() {
        let mut arrays = setup(32, 4, &[FormatSpec::Block, FormatSpec::Block]);
        let stmt = shift_stmt(32, &arrays);
        let plan = ExecPlan::inspect(&arrays, &stmt).unwrap();
        assert!(plan.is_valid_for(&arrays));
        // remap A1 to a different allocation → plan must refuse
        let remapped = setup(32, 4, &[FormatSpec::Block, FormatSpec::Cyclic(1)]);
        arrays[1] = remapped.into_iter().nth(1).unwrap();
        assert!(!plan.is_valid_for(&arrays));
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut a = arrays;
            plan.execute_seq(&mut a);
        }));
        assert!(res.is_err(), "executing a stale plan must panic, not corrupt");
    }

    #[test]
    fn replicated_lhs_keeps_copies_coherent() {
        let dom = IndexDomain::of_shape(&[12]).unwrap();
        let rep = Arc::new(hpf_core::EffectiveDist::Replicated {
            domain: dom,
            procs: hpf_core::ProcSet::all(3),
        });
        let mut ds = DataSpace::new(3);
        let b = ds.declare("B", IndexDomain::of_shape(&[12]).unwrap()).unwrap();
        ds.distribute(b, &DistributeSpec::new(vec![FormatSpec::Cyclic(1)])).unwrap();
        let mut arrays = vec![
            DistArray::new("R", rep, 3, 0.0),
            DistArray::from_fn("B", ds.effective(b).unwrap(), 3, |i| (i[0] * 7) as f64),
        ];
        let doms: Vec<&IndexDomain> = arrays.iter().map(|a| a.domain()).collect();
        let stmt = Assignment::new(
            0,
            Section::from_triplets(vec![span(1, 12)]),
            vec![Term::new(1, Section::from_triplets(vec![span(1, 12)]))],
            Combine::Copy,
            &doms,
        )
        .unwrap();
        let expect = dense_reference(&arrays, &stmt);
        ExecPlan::inspect(&arrays, &stmt).unwrap().execute_seq(&mut arrays);
        assert_eq!(arrays[0].to_dense(), expect);
        // every replica holds the full updated copy
        for p in (1..=3u32).map(ProcId) {
            for i in arrays[0].domain().clone().iter() {
                let off = arrays[0].local_offset(p, &i).unwrap();
                assert_eq!(arrays[0].local(p.zero_based())[off], (i[0] * 7) as f64);
            }
        }
    }
}
