//! E5 — forest surgery throughput: REALIGN/REDISTRIBUTE churn on a family
//! of allocatable arrays (§4.2/§5.2/§6 semantics, including child
//! freezing).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hpf_core::{AlignSpec, DataSpace, DistributeSpec, FormatSpec};
use hpf_index::IndexDomain;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("forest_surgery");
    g.bench_function("realign_redistribute_cycle", |b| {
        let mut ds = DataSpace::new(8);
        let base1 = ds.declare("B1", IndexDomain::of_shape(&[1024]).unwrap()).unwrap();
        let base2 = ds.declare("B2", IndexDomain::of_shape(&[1024]).unwrap()).unwrap();
        let a = ds.declare("A", IndexDomain::of_shape(&[1024]).unwrap()).unwrap();
        ds.set_dynamic(a);
        ds.set_dynamic(base1);
        ds.distribute(base1, &DistributeSpec::new(vec![FormatSpec::Block])).unwrap();
        ds.distribute(base2, &DistributeSpec::new(vec![FormatSpec::Cyclic(1)])).unwrap();
        b.iter(|| {
            ds.realign(a, base1, &AlignSpec::identity(1)).unwrap();
            ds.redistribute(base1, &DistributeSpec::new(vec![FormatSpec::Cyclic(4)]))
                .unwrap();
            ds.realign(a, base2, &AlignSpec::identity(1)).unwrap();
            ds.redistribute(base1, &DistributeSpec::new(vec![FormatSpec::Block])).unwrap();
            black_box(ds.effective(a).unwrap())
        })
    });
    g.bench_function("allocate_deallocate_cycle", |b| {
        let mut ds = DataSpace::new(8);
        let w = ds.declare_allocatable("W", 1).unwrap();
        ds.distribute(w, &DistributeSpec::new(vec![FormatSpec::Cyclic(2)])).unwrap();
        b.iter(|| {
            ds.allocate(w, IndexDomain::of_shape(&[4096]).unwrap()).unwrap();
            let e = ds.effective(w).unwrap();
            ds.deallocate(w).unwrap();
            black_box(e)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
