//! `hpf-lint` — run the static schedule verifier over example programs.
//!
//! ```text
//! hpf-lint                     verify every scenario
//! hpf-lint quickstart ...      verify the named scenarios
//! hpf-lint --list              list scenario names
//! ```
//!
//! Exit status: 0 when every verified plan is clean (an expected
//! replicated-divergence verdict is reported as a note, not a failure),
//! 1 when any statement carries a diagnostic, 2 on usage errors.

use hpf_verify::scenarios::{self, Scenario};
use hpf_verify::AnalysisVerdict;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--list") {
        for s in scenarios::all() {
            println!("{:<22} {}", s.name, s.summary);
        }
        return ExitCode::SUCCESS;
    }

    let picked: Vec<Scenario> = if args.is_empty() {
        scenarios::all()
    } else {
        let mut picked = Vec::with_capacity(args.len());
        for name in &args {
            match scenarios::by_name(name) {
                Some(s) => picked.push(s),
                None => {
                    eprintln!("hpf-lint: unknown scenario `{name}`");
                    usage();
                    return ExitCode::from(2);
                }
            }
        }
        picked
    };

    let mut findings = 0usize;
    let mut statements = 0usize;
    for scenario in &picked {
        println!("== {} — {}", scenario.name, scenario.summary);
        let mut prog = (scenario.build)();
        let report = match prog.verify_all() {
            Ok(r) => r,
            Err(e) => {
                eprintln!("hpf-lint: {}: planning failed: {e}", scenario.name);
                return ExitCode::from(2);
            }
        };
        statements += report.statements.len();
        for stmt in &report.statements {
            print!("{stmt}");
            if stmt.verdict == AnalysisVerdict::ReplicatedDivergence {
                println!(
                    "   note: replicated operand — analysis totals legitimately \
                     diverge (every replica computes locally)"
                );
            }
        }
        findings += report.finding_count();
        println!();
    }

    if findings == 0 {
        println!(
            "hpf-lint: {statements} statement plan(s) across {} scenario(s): \
             all five properties hold",
            picked.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("hpf-lint: {findings} finding(s) — plans are NOT proven safe");
        ExitCode::FAILURE
    }
}

fn usage() {
    eprintln!(
        "usage: hpf-lint [--list] [scenario ...]\n\
         verifies compiled plans for the example programs; with no names, all of them"
    );
}
