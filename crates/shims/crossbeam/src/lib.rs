//! Offline shim for the `crossbeam` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace ships a minimal, API-compatible implementation of the one
//! `crossbeam` facility `hpf-runtime` uses: `crossbeam::thread::scope`
//! with `scope.spawn(|_| ...)`. It is implemented on top of
//! `std::thread::scope`, which provides the same structured-concurrency
//! guarantee (all spawned threads join before `scope` returns).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Scoped threads (see crate docs).
pub mod thread {
    use std::any::Any;

    /// A handle to a scope in which scoped threads can be spawned,
    /// mirroring `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives a reference to the
        /// scope (crossbeam convention), enabling nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Create a scope for spawning scoped threads, mirroring
    /// `crossbeam::thread::scope`.
    ///
    /// Unlike crossbeam, a panicking child thread propagates its panic when
    /// the scope joins (std semantics) instead of being collected into the
    /// `Err` variant; callers that `.expect()` the result behave the same
    /// either way.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_and_share() {
        let data = vec![1u64, 2, 3, 4];
        let mut partial = vec![0u64; 2];
        let (a, b) = partial.split_at_mut(1);
        super::thread::scope(|scope| {
            let d = &data;
            scope.spawn(move |_| a[0] = d[0] + d[1]);
            scope.spawn(move |_| b[0] = d[2] + d[3]);
        })
        .unwrap();
        assert_eq!(partial, vec![3, 7]);
    }
}
