//! Shared experiment scenarios for the benchmark harness and the `repro_*`
//! binaries. Each function builds one of the DESIGN.md §E workloads.

#![forbid(unsafe_code)]

use hpf_core::{
    AlignExpr, AlignSpec, DataSpace, DistributeSpec, EffectiveDist, FormatSpec,
};
use hpf_index::{span, IndexDomain, Section};
use hpf_runtime::{Assignment, Combine, Term};
use hpf_template::TemplateModel;
use std::sync::Arc;

/// A named mapping scheme for the staggered-grid experiment (E2).
pub enum StaggeredScheme {
    /// Template `T(0:2N,0:2N)` distributed with the given formats.
    Template(Vec<FormatSpec>),
    /// Template `T(0:N,0:N)` (the "size (N+1,N+1)" alternative of §8.1.1).
    SmallTemplate(Vec<FormatSpec>),
    /// Direct distribution of U, V, P with the given per-dim format.
    Direct(FormatSpec),
}

/// Build the §8.1.1 mappings `[P, U, V]` for a scheme over an
/// `np_side × np_side` grid.
pub fn staggered_mappings(
    n: i64,
    np_side: usize,
    scheme: &StaggeredScheme,
) -> Vec<Arc<EffectiveDist>> {
    let np = np_side * np_side;
    let d = AlignExpr::dummy;
    match scheme {
        StaggeredScheme::Template(formats) | StaggeredScheme::SmallTemplate(formats) => {
            let double = matches!(scheme, StaggeredScheme::Template(_));
            let mut m = TemplateModel::new(np);
            m.declare_processors("G", IndexDomain::of_shape(&[np_side, np_side]).unwrap())
                .unwrap();
            let tdom = if double {
                IndexDomain::standard(&[(0, 2 * n), (0, 2 * n)]).unwrap()
            } else {
                IndexDomain::standard(&[(0, n), (0, n)]).unwrap()
            };
            let t = m.template("T", tdom).unwrap();
            let p = m.array("P", IndexDomain::standard(&[(1, n), (1, n)]).unwrap()).unwrap();
            let u = m.array("U", IndexDomain::standard(&[(0, n), (1, n)]).unwrap()).unwrap();
            let v = m.array("V", IndexDomain::standard(&[(1, n), (0, n)]).unwrap()).unwrap();
            if double {
                m.align(p, t, &AlignSpec::with_exprs(2, vec![d(0) * 2 - 1, d(1) * 2 - 1]))
                    .unwrap();
                m.align(u, t, &AlignSpec::with_exprs(2, vec![d(0) * 2, d(1) * 2 - 1])).unwrap();
                m.align(v, t, &AlignSpec::with_exprs(2, vec![d(0) * 2 - 1, d(1) * 2])).unwrap();
            } else {
                // the (N+1,N+1) collocating template: identity-ish alignment
                m.align(p, t, &AlignSpec::with_exprs(2, vec![d(0), d(1)])).unwrap();
                m.align(u, t, &AlignSpec::with_exprs(2, vec![d(0), d(1)])).unwrap();
                m.align(v, t, &AlignSpec::with_exprs(2, vec![d(0), d(1)])).unwrap();
            }
            m.distribute(t, &DistributeSpec::to(formats.clone(), "G")).unwrap();
            vec![m.resolve(p).unwrap(), m.resolve(u).unwrap(), m.resolve(v).unwrap()]
        }
        StaggeredScheme::Direct(fmt) => {
            let mut ds = DataSpace::new(np);
            ds.declare_processors("G", IndexDomain::of_shape(&[np_side, np_side]).unwrap())
                .unwrap();
            let p = ds.declare("P", IndexDomain::standard(&[(1, n), (1, n)]).unwrap()).unwrap();
            let u = ds.declare("U", IndexDomain::standard(&[(0, n), (1, n)]).unwrap()).unwrap();
            let v = ds.declare("V", IndexDomain::standard(&[(1, n), (0, n)]).unwrap()).unwrap();
            for id in [p, u, v] {
                ds.distribute(id, &DistributeSpec::to(vec![fmt.clone(), fmt.clone()], "G"))
                    .unwrap();
            }
            vec![ds.effective(p).unwrap(), ds.effective(u).unwrap(), ds.effective(v).unwrap()]
        }
    }
}

/// The §8.1.1 statement `P = U(0:N-1,:) + U(1:N,:) + V(:,0:N-1) + V(:,1:N)`
/// over mappings `[P, U, V]`.
pub fn staggered_statement(n: i64, maps: &[Arc<EffectiveDist>]) -> Assignment {
    let doms: Vec<&IndexDomain> = maps.iter().map(|m| m.domain()).collect();
    Assignment::new(
        0,
        Section::from_triplets(vec![span(1, n), span(1, n)]),
        vec![
            Term::new(1, Section::from_triplets(vec![span(0, n - 1), span(1, n)])),
            Term::new(1, Section::from_triplets(vec![span(1, n), span(1, n)])),
            Term::new(2, Section::from_triplets(vec![span(1, n), span(0, n - 1)])),
            Term::new(2, Section::from_triplets(vec![span(1, n), span(1, n)])),
        ],
        Combine::Sum,
        &doms,
    )
    .expect("conforming")
}

/// A 1-D mapping with the given format over `np` processors.
pub fn mapping_1d(n: usize, np: usize, fmt: FormatSpec) -> Arc<EffectiveDist> {
    let mut ds = DataSpace::new(np);
    let a = ds.declare("A", IndexDomain::of_shape(&[n]).unwrap()).unwrap();
    ds.distribute(a, &DistributeSpec::new(vec![fmt])).unwrap();
    ds.effective(a).unwrap()
}

/// Triangular workload weights: position `i` costs `i`.
pub fn triangular_weights(n: usize) -> Vec<u64> {
    (1..=n as u64).collect()
}

/// Random workload weights in `[1, max_w]`, deterministic per seed.
pub fn random_weights(n: usize, max_w: u64, seed: u64) -> Vec<u64> {
    use rand::{RngExt, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random_range(1..=max_w)).collect()
}

/// The b13/b14 replay workload set, shared by `b13_replay_throughput`,
/// `b14_backend_exchange`, and the `bench_gate` CI harness so the gate
/// always measures exactly what the benches report.
pub mod replay {
    use hpf_core::{DataSpace, DistributeSpec, FormatSpec};
    use hpf_index::{span, IndexDomain, Section};
    use hpf_runtime::{Assignment, Combine, DistArray, ExecPlan, Term};

    /// Two 1-D arrays of extent `n`, both distributed with `fmt`.
    pub fn arrays_1d(n: i64, np: usize, fmt: &FormatSpec) -> Vec<DistArray<f64>> {
        let mut ds = DataSpace::new(np);
        let a = ds.declare("A", IndexDomain::standard(&[(1, n)]).unwrap()).unwrap();
        let b = ds.declare("B", IndexDomain::standard(&[(1, n)]).unwrap()).unwrap();
        for id in [a, b] {
            ds.distribute(id, &DistributeSpec::new(vec![fmt.clone()])).unwrap();
        }
        vec![
            DistArray::from_fn("A", ds.effective(a).unwrap(), np, |i| i[0] as f64),
            DistArray::from_fn("B", ds.effective(b).unwrap(), np, |i| (i[0] * 3) as f64),
        ]
    }

    /// `A(2:N) = B(1:N-1)` — the 1-D shift.
    pub fn shift_1d(n: i64, arrays: &[DistArray<f64>]) -> Assignment {
        let doms: Vec<&IndexDomain> = arrays.iter().map(|a| a.domain()).collect();
        Assignment::new(
            0,
            Section::from_triplets(vec![span(2, n)]),
            vec![Term::new(1, Section::from_triplets(vec![span(1, n - 1)]))],
            Combine::Copy,
            &doms,
        )
        .unwrap()
    }

    /// Two `n × n` arrays over an `np_side × np_side` grid, both
    /// distributed `(fmt, fmt)`.
    pub fn arrays_2d(n: i64, np_side: usize, fmt: &FormatSpec) -> Vec<DistArray<f64>> {
        let np = np_side * np_side;
        let mut ds = DataSpace::new(np);
        ds.declare_processors("G", IndexDomain::of_shape(&[np_side, np_side]).unwrap())
            .unwrap();
        let p = ds.declare("P", IndexDomain::standard(&[(1, n), (1, n)]).unwrap()).unwrap();
        let u = ds.declare("U", IndexDomain::standard(&[(1, n), (1, n)]).unwrap()).unwrap();
        for id in [p, u] {
            ds.distribute(id, &DistributeSpec::to(vec![fmt.clone(), fmt.clone()], "G"))
                .unwrap();
        }
        vec![
            DistArray::new("P", ds.effective(p).unwrap(), np, 0.0),
            DistArray::from_fn("U", ds.effective(u).unwrap(), np, |i| {
                (i[0] * 100 + i[1]) as f64
            }),
        ]
    }

    /// The 2-D 5-point stencil sum over `P(2:N-1, 2:N-1)`.
    pub fn stencil_2d(n: i64, arrays: &[DistArray<f64>]) -> Assignment {
        let doms: Vec<&IndexDomain> = arrays.iter().map(|a| a.domain()).collect();
        Assignment::new(
            0,
            Section::from_triplets(vec![span(2, n - 1), span(2, n - 1)]),
            vec![
                Term::new(1, Section::from_triplets(vec![span(1, n - 2), span(2, n - 1)])),
                Term::new(1, Section::from_triplets(vec![span(3, n), span(2, n - 1)])),
                Term::new(1, Section::from_triplets(vec![span(2, n - 1), span(1, n - 2)])),
                Term::new(1, Section::from_triplets(vec![span(2, n - 1), span(3, n)])),
            ],
            Combine::Sum,
            &doms,
        )
        .unwrap()
    }

    /// Block array reading a CYCLIC(1) array over the full domain: every
    /// cyclic period scatters across all processors — the worst case for
    /// coalescing, the analogue of a transpose's all-to-all.
    pub fn cyclic_transpose(n: i64, np: usize) -> (Vec<DistArray<f64>>, Assignment) {
        let mut ds = DataSpace::new(np);
        let a = ds.declare("A", IndexDomain::standard(&[(1, n)]).unwrap()).unwrap();
        let b = ds.declare("B", IndexDomain::standard(&[(1, n)]).unwrap()).unwrap();
        ds.distribute(a, &DistributeSpec::new(vec![FormatSpec::Block])).unwrap();
        ds.distribute(b, &DistributeSpec::new(vec![FormatSpec::Cyclic(1)])).unwrap();
        let arrays = vec![
            DistArray::from_fn("A", ds.effective(a).unwrap(), np, |i| i[0] as f64),
            DistArray::from_fn("B", ds.effective(b).unwrap(), np, |i| (i[0] * 7) as f64),
        ];
        let doms: Vec<&IndexDomain> = arrays.iter().map(|x| x.domain()).collect();
        let stmt = Assignment::new(
            0,
            Section::from_triplets(vec![span(1, n)]),
            vec![Term::new(1, Section::from_triplets(vec![span(1, n)]))],
            Combine::Copy,
            &doms,
        )
        .unwrap();
        (arrays, stmt)
    }

    /// Elements computed per replay of `plan`.
    pub fn replay_elements(plan: &ExecPlan) -> usize {
        plan.per_proc().iter().map(|pp| pp.volume).sum()
    }

    /// The b16 adaptive-redistribution workload: a deposit sweep confined
    /// to the first quarter of two BLOCK-distributed arrays, gathering 48
    /// cells upwind.
    ///
    /// ```text
    /// RHO(50:N/4) = RHO(2:N/4-48) + SRC(50:N/4)
    /// ```
    ///
    /// Under BLOCK one of the `np` processors does all the work; the wide
    /// gather makes CYCLIC re-blocking price out (most reads would cross
    /// block boundaries), so the adaptive controller's winning candidate
    /// is the load-fitted `GENERAL_BLOCK` — the §4.1.2 format the paper
    /// motivates by exactly this workload class.
    pub fn adaptive_hotspot(n: i64, np: usize) -> (Vec<DistArray<f64>>, Vec<Assignment>) {
        let reach = 48;
        let hot = n / 4;
        let mut ds = DataSpace::new(np);
        let rho = ds.declare("RHO", IndexDomain::standard(&[(1, n)]).unwrap()).unwrap();
        let src = ds.declare("SRC", IndexDomain::standard(&[(1, n)]).unwrap()).unwrap();
        for id in [rho, src] {
            ds.distribute(id, &DistributeSpec::new(vec![FormatSpec::Block])).unwrap();
            ds.set_dynamic(id);
        }
        let arrays = vec![
            DistArray::from_fn("RHO", ds.effective(rho).unwrap(), np, |i| i[0] as f64),
            DistArray::from_fn("SRC", ds.effective(src).unwrap(), np, |i| {
                (i[0] % 7) as f64
            }),
        ];
        let doms: Vec<&IndexDomain> = arrays.iter().map(|a| a.domain()).collect();
        let stmts = vec![Assignment::new(
            0,
            Section::from_triplets(vec![span(reach + 2, hot)]),
            vec![
                Term::new(0, Section::from_triplets(vec![span(2, hot - reach)])),
                Term::new(1, Section::from_triplets(vec![span(reach + 2, hot)])),
            ],
            Combine::Sum,
            &doms,
        )
        .unwrap()];
        (arrays, stmts)
    }

    /// The b15 program-fusion timestep: three independent statements in
    /// one superstep over BLOCK state arrays `U`, `V`, `W` and a
    /// CYCLIC(1) coefficient array `C` that is *never written*.
    ///
    /// ```text
    /// U(2:N-1) = (U(1:N-2) + U(3:N)) / 2     ! stencil: ghosts stay hot
    /// V(2:N-1) = V(2:N-1) + C(1:N-2)         ! cyclic reads: all-to-all
    /// W(2:N-1) = W(2:N-1) + C(3:N)           ! same pairs → coalesce
    /// ```
    ///
    /// The cyclic `C` reads dominate the wire; both consumers share every
    /// `(sender, receiver)` pair, so fusion coalesces their messages —
    /// and since no statement writes `C`, every one of those segments is
    /// clean after the cold timestep and warm fused replays skip the
    /// entire all-to-all, leaving only the stencil's boundary ghosts.
    pub fn fusion_timestep(
        n: i64,
        np: usize,
    ) -> (Vec<DistArray<f64>>, Vec<Assignment>) {
        let mut ds = DataSpace::new(np);
        let ids: Vec<_> = ["U", "V", "W", "C"]
            .iter()
            .map(|name| {
                ds.declare(name, IndexDomain::standard(&[(1, n)]).unwrap()).unwrap()
            })
            .collect();
        for (k, &id) in ids.iter().enumerate() {
            let fmt = if k == 3 { FormatSpec::Cyclic(1) } else { FormatSpec::Block };
            ds.distribute(id, &DistributeSpec::new(vec![fmt])).unwrap();
        }
        let arrays: Vec<DistArray<f64>> = ids
            .iter()
            .enumerate()
            .map(|(k, &id)| {
                let name = ["U", "V", "W", "C"][k];
                DistArray::from_fn(name, ds.effective(id).unwrap(), np, move |i| {
                    (i[0] * (k as i64 + 1) % 101) as f64
                })
            })
            .collect();
        let doms: Vec<&IndexDomain> = arrays.iter().map(|a| a.domain()).collect();
        let mid = Section::from_triplets(vec![span(2, n - 1)]);
        let lo = Section::from_triplets(vec![span(1, n - 2)]);
        let hi = Section::from_triplets(vec![span(3, n)]);
        let stmts = vec![
            Assignment::new(
                0,
                mid.clone(),
                vec![Term::new(0, lo.clone()), Term::new(0, hi.clone())],
                Combine::Average,
                &doms,
            )
            .unwrap(),
            Assignment::new(
                1,
                mid.clone(),
                vec![Term::new(1, mid.clone()), Term::new(3, lo)],
                Combine::Sum,
                &doms,
            )
            .unwrap(),
            Assignment::new(
                2,
                mid.clone(),
                vec![Term::new(2, mid), Term::new(3, hi)],
                Combine::Sum,
                &doms,
            )
            .unwrap(),
        ];
        (arrays, stmts)
    }
}
