//! Static schedule verification across the whole mapping space: every plan
//! the inspector compiles for random block / cyclic / general-block /
//! replicated mappings (1-D and 2-D) must *prove* the five safety
//! properties — write coverage, bounds, race freedom, deadlock freedom,
//! conservation — and every packaged example scenario must lint clean,
//! with replication reported as the explicit divergence verdict rather
//! than silently skipped.

use hpf::prelude::*;
use hpf::verify::scenarios;
use proptest::prelude::*;
use std::sync::Arc;

/// Random GENERAL_BLOCK sizes: `np` non-negative lengths summing to `n`.
fn gb_sizes(n: usize, np: usize, seed: u64) -> Vec<i64> {
    use rand::{RngExt, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut cuts: Vec<i64> = (0..np.saturating_sub(1))
        .map(|_| rng.random_range(0..=n as u64) as i64)
        .collect();
    cuts.sort_unstable();
    cuts.push(n as i64);
    let mut prev = 0i64;
    cuts.into_iter()
        .map(|c| {
            let s = c - prev;
            prev = c;
            s
        })
        .collect()
}

/// One of the paper's 1-D mapping families, selected by `kind` (5 =
/// replicated).
fn mapping_of(kind: u8, n: usize, np: usize, seed: u64) -> Arc<EffectiveDist> {
    if kind % 6 == 5 {
        return Arc::new(EffectiveDist::Replicated {
            domain: IndexDomain::of_shape(&[n]).unwrap(),
            procs: ProcSet::all(np),
        });
    }
    let fmt = match kind % 6 {
        0 => FormatSpec::Block,
        1 => FormatSpec::BlockBalanced,
        2 => FormatSpec::Cyclic(1),
        3 => FormatSpec::Cyclic(3),
        _ => FormatSpec::GeneralBlockSizes(gb_sizes(n, np, seed)),
    };
    let mut ds = DataSpace::new(np);
    let a = ds.declare("M", IndexDomain::of_shape(&[n]).unwrap()).unwrap();
    ds.distribute(a, &DistributeSpec::new(vec![fmt])).unwrap();
    ds.effective(a).unwrap()
}

fn build_arrays(n: usize, np: usize, ka: u8, kb: u8, seed: u64) -> Vec<DistArray<f64>> {
    vec![
        DistArray::from_fn("A", mapping_of(ka, n, np, seed), np, |i| i[0] as f64),
        DistArray::from_fn("B", mapping_of(kb, n, np, seed ^ 0x9e37), np, |i| {
            (i[0] * 13 - 5) as f64
        }),
    ]
}

/// A random 2-D mapping over an `np_side × np_side` grid (16 = replicated).
fn mapping_2d(kind: u8, n: usize, np_side: usize, seed: u64) -> Arc<EffectiveDist> {
    let np = np_side * np_side;
    if kind >= 16 {
        return Arc::new(EffectiveDist::Replicated {
            domain: IndexDomain::of_shape(&[n, n]).unwrap(),
            procs: ProcSet::all(np),
        });
    }
    let fmt = |k: u8, s: u64| match k % 4 {
        0 => FormatSpec::Block,
        1 => FormatSpec::Cyclic(1),
        2 => FormatSpec::Cyclic(2),
        _ => FormatSpec::GeneralBlockSizes(gb_sizes(n, np_side, s)),
    };
    let mut ds = DataSpace::new(np);
    ds.declare_processors("G", IndexDomain::of_shape(&[np_side, np_side]).unwrap())
        .unwrap();
    let a = ds.declare("M", IndexDomain::of_shape(&[n, n]).unwrap()).unwrap();
    ds.distribute(
        a,
        &DistributeSpec::to(vec![fmt(kind % 4, seed), fmt(kind / 4, seed ^ 0x55)], "G"),
    )
    .unwrap();
    ds.effective(a).unwrap()
}

/// `A(2:n) = combine(B(1:n-1)[, A(1:n-1)])` — LHS aliasing included.
fn build_stmt(n: i64, combine_k: u8, arrays: &[DistArray<f64>]) -> Assignment {
    let doms: Vec<&IndexDomain> = arrays.iter().map(|a| a.domain()).collect();
    let rhs = Section::from_triplets(vec![span(1, n - 1)]);
    let (combine, terms) = match combine_k % 4 {
        0 => (Combine::Copy, vec![Term::new(1, rhs)]),
        1 => (Combine::Sum, vec![Term::new(1, rhs.clone()), Term::new(0, rhs)]),
        2 => (Combine::Average, vec![Term::new(1, rhs.clone()), Term::new(0, rhs)]),
        _ => (Combine::Max, vec![Term::new(1, rhs.clone()), Term::new(0, rhs)]),
    };
    Assignment::new(0, Section::from_triplets(vec![span(2, n)]), terms, combine, &doms)
        .unwrap()
}

/// A 2-D stencil statement over `A(2:n-1, 2:n-1)` with shifted `B` reads.
fn build_stmt_2d(n: i64, combine_k: u8, arrays: &[DistArray<f64>]) -> Assignment {
    let doms: Vec<&IndexDomain> = arrays.iter().map(|a| a.domain()).collect();
    let west = Section::from_triplets(vec![span(1, n - 2), span(2, n - 1)]);
    let east = Section::from_triplets(vec![span(3, n), span(2, n - 1)]);
    let south = Section::from_triplets(vec![span(2, n - 1), span(1, n - 2)]);
    let (combine, terms) = match combine_k % 4 {
        0 => (Combine::Copy, vec![Term::new(1, west)]),
        1 => (
            Combine::Sum,
            vec![
                Term::new(1, west),
                Term::new(1, east.clone()),
                Term::new(1, south),
                Term::new(0, east),
            ],
        ),
        2 => (Combine::Average, vec![Term::new(1, west), Term::new(1, east)]),
        _ => (Combine::Max, vec![Term::new(1, west), Term::new(0, south)]),
    };
    Assignment::new(
        0,
        Section::from_triplets(vec![span(2, n - 1), span(2, n - 1)]),
        terms,
        combine,
        &doms,
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every plan the inspector compiles for a random pair of 1-D mappings
    /// proves all five properties, and partitioning mappings get the
    /// `Exact` conservation verdict (replication gets the explicit
    /// `ReplicatedDivergence` verdict — reported, never a finding).
    #[test]
    fn random_1d_plans_verify_clean(
        n in 16usize..48,
        np in 1usize..5,
        ka in 0u8..6,
        kb in 0u8..6,
        seed in 0u64..1000,
        combine_k in 0u8..4,
    ) {
        let arrays = build_arrays(n, np, ka, kb, seed);
        let stmt = build_stmt(n as i64, combine_k, &arrays);
        let plan = ExecPlan::inspect(&arrays, &stmt).unwrap();
        let report = verify_plan(&arrays, &stmt, &plan);
        prop_assert!(report.is_clean(), "{report}");
        let replicated = ka % 6 == 5 || kb % 6 == 5;
        if !replicated {
            prop_assert_eq!(report.verdict, AnalysisVerdict::Exact, "{}", report);
        }
        prop_assert!(report.verdict != AnalysisVerdict::Divergent);
    }

    /// Same for 2-D grids: random per-dimension formats and replication.
    #[test]
    fn random_2d_plans_verify_clean(
        n in 6usize..14,
        np_side in 1usize..3,
        ka in 0u8..17,
        kb in 0u8..17,
        seed in 0u64..1000,
        combine_k in 0u8..4,
    ) {
        let np = np_side * np_side;
        let arrays = vec![
            DistArray::from_fn("A", mapping_2d(ka, n, np_side, seed), np, |i| {
                (i[0] * 31 + i[1]) as f64
            }),
            DistArray::from_fn("B", mapping_2d(kb, n, np_side, seed ^ 0x77), np, |i| {
                (i[0] - 2 * i[1]) as f64
            }),
        ];
        let stmt = build_stmt_2d(n as i64, combine_k, &arrays);
        let plan = ExecPlan::inspect(&arrays, &stmt).unwrap();
        let report = verify_plan(&arrays, &stmt, &plan);
        prop_assert!(report.is_clean(), "{report}");
        if ka < 16 && kb < 16 {
            prop_assert_eq!(report.verdict, AnalysisVerdict::Exact, "{}", report);
        }
    }
}

/// Every packaged example scenario lints clean end to end through
/// `Program::verify_all` — zero findings over all existing mappings.
#[test]
fn all_example_scenarios_verify_clean() {
    for scenario in scenarios::all() {
        let mut prog = (scenario.build)();
        let report = prog.verify_all().unwrap();
        assert!(!report.statements.is_empty(), "{}: empty program", scenario.name);
        assert!(report.is_clean(), "{}:\n{report}", scenario.name);
        for stmt in &report.statements {
            assert_ne!(
                stmt.verdict,
                AnalysisVerdict::Divergent,
                "{}: {stmt}",
                scenario.name
            );
        }
    }
}

/// The replicated-operand scenario carries the explicit
/// `ReplicatedDivergence` verdict — the once-silent analysis divergence is
/// now a documented, queryable outcome.
#[test]
fn replicated_scenario_reports_divergence_verdict() {
    let mut prog = (scenarios::by_name("directive_tour").unwrap().build)();
    let report = prog.verify_all().unwrap();
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.statements[0].verdict, AnalysisVerdict::ReplicatedDivergence);
    assert_eq!(report.replicated_statements(), 1);

    // and a fully-partitioned scenario is Exact
    let mut prog = (scenarios::by_name("quickstart").unwrap().build)();
    let report = prog.verify_all().unwrap();
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.statements[0].verdict, AnalysisVerdict::Exact);
    assert_eq!(report.replicated_statements(), 0);
}

/// Verification runs on the *re-inspected* plan after a mid-program
/// REDISTRIBUTE: the rebalance scenario has already executed and remapped
/// by the time `verify_all` sees it.
#[test]
fn rebalanced_program_verifies_clean_after_remap() {
    let mut prog = (scenarios::by_name("dynamic_rebalance").unwrap().build)();
    let report = prog.verify_all().unwrap();
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.statements[0].verdict, AnalysisVerdict::Exact);
}
