use std::fmt;

/// Errors raised by index-domain and section operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexError {
    /// A subscript triplet was built with stride 0, which Fortran 90 forbids.
    ZeroStride,
    /// An operation combined objects of different rank.
    RankMismatch {
        /// Rank expected by the operation.
        expected: usize,
        /// Rank actually supplied.
        found: usize,
    },
    /// Rank exceeds [`crate::MAX_RANK`] (the Fortran 90 limit of 7).
    RankTooHigh(usize),
    /// A subscript tuple lies outside the index domain it was used with.
    OutOfBounds {
        /// Dimension (0-based) at which the violation occurred.
        dim: usize,
        /// The offending subscript value.
        value: i64,
    },
    /// A section does not fit within the domain it sections.
    SectionOutOfBounds {
        /// Dimension (0-based) at which the violation occurred.
        dim: usize,
    },
    /// Arithmetic overflow in an index computation.
    Overflow,
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::ZeroStride => write!(f, "subscript triplet stride must be nonzero"),
            IndexError::RankMismatch { expected, found } => {
                write!(f, "rank mismatch: expected {expected}, found {found}")
            }
            IndexError::RankTooHigh(r) => {
                write!(f, "rank {r} exceeds the Fortran 90 maximum of {}", crate::MAX_RANK)
            }
            IndexError::OutOfBounds { dim, value } => {
                write!(f, "subscript {value} out of bounds in dimension {}", dim + 1)
            }
            IndexError::SectionOutOfBounds { dim } => {
                write!(f, "section exceeds array bounds in dimension {}", dim + 1)
            }
            IndexError::Overflow => write!(f, "arithmetic overflow in index computation"),
        }
    }
}

impl std::error::Error for IndexError {}
