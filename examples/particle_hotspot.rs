//! Self-adaptive redistribution of a particle hotspot (paper §1, §4.1.2).
//!
//! A particle-in-cell timestep spends its compute where the particles
//! are — and particles cluster. Here the whole population sits in the
//! first quarter of a `BLOCK`-distributed domain, so one of the four
//! processors does all the work while three idle: the exact workload
//! class the paper's `GENERAL_BLOCK` format exists for ("important for
//! the support of load balancing", §4.1.2).
//!
//! Instead of hand-picking the bounds like `load_balancing.rs` does,
//! this example lets the [`Session`]'s adaptive controller find them
//! *live*: it watches the measured per-rank compute time of warm
//! replay, prices candidate remappings (`GENERAL_BLOCK` fitted to the
//! observed load, re-blocking, `CYCLIC(k)`) on the machine model, and
//! performs the redistribution mid-trajectory once the win amortizes
//! the one-off remap traffic within the policy horizon.
//!
//! Run with: `cargo run --release --example particle_hotspot`

use hpf::prelude::*;

const N: i64 = 65_536;
const NP: usize = 4;
/// The particle cluster: everything lives in the first quarter.
const HOT: i64 = N / 4;

fn build_program() -> Program {
    let mut ds = DataSpace::new(NP);
    let rho = ds.declare("RHO", IndexDomain::of_shape(&[N as usize]).unwrap()).unwrap();
    let src = ds.declare("SRC", IndexDomain::of_shape(&[N as usize]).unwrap()).unwrap();
    for id in [rho, src] {
        ds.distribute(id, &DistributeSpec::new(vec![FormatSpec::Block])).unwrap();
        ds.set_dynamic(id);
    }
    let mut prog = Program::new(vec![
        DistArray::from_fn("RHO", ds.effective(rho).unwrap(), NP, |i| i[0] as f64),
        DistArray::from_fn("SRC", ds.effective(src).unwrap(), NP, |i| (i[0] % 7) as f64),
    ]);
    let doms: Vec<&IndexDomain> = prog.arrays.iter().map(|a| a.domain()).collect();
    // deposit + shift: the charge-deposition sweep only touches the
    // cells the particles occupy — the hot first quarter
    let deposit = Assignment::new(
        0,
        Section::from_triplets(vec![span(2, HOT)]),
        vec![
            Term::new(0, Section::from_triplets(vec![span(1, HOT - 1)])),
            Term::new(1, Section::from_triplets(vec![span(2, HOT)])),
        ],
        Combine::Sum,
        &doms,
    )
    .unwrap();
    prog.push(deposit).unwrap();
    prog
}

fn main() {
    // the adaptive session: default policy — 3-sample window, 1.15
    // imbalance gate, 50-timestep amortization horizon, 10% hysteresis
    let mut session = Session::new(build_program()).adapt(AdaptPolicy::default());
    let timesteps = 30u64;
    session.run(timesteps).unwrap();

    let stats = session.program().stats();
    let report = session.adapt_report().expect("adapt was configured").clone();
    println!(
        "particle hotspot: N = {N}, NP = {NP}, work confined to 1..{HOT} \
         ({timesteps} timesteps)\n"
    );
    println!("observed imbalance when the controller acted: {:.2}", {
        report.events.first().map(|e| e.observed_imbalance).unwrap_or(1.0)
    });
    for e in &report.events {
        println!(
            "t={:>3}: remapped {} -> {}\n       stay {:.1}us/step vs move {:.1}us/step \
             + {:.1}us one-off ({} elements) — predicted gain {:.1}us over the horizon",
            e.timestep,
            e.arrays.join(","),
            e.candidate,
            e.cost_stay,
            e.cost_candidate,
            e.remap_cost,
            e.remap_elements,
            e.predicted_gain
        );
    }
    println!(
        "\nafter adaptation: per-rank modeled loads {:?}, imbalance {:.2}",
        stats.rank_loads,
        stats.imbalance()
    );

    // the acceptance bar: at least one live remap, and the machine-model
    // price of a warm timestep must improve by >= 1.3x over static BLOCK
    assert!(report.remaps >= 1, "the hotspot must trigger a live remap");
    let e = &report.events[0];
    let gain = e.cost_stay / e.cost_candidate;
    assert!(
        gain >= 1.3,
        "adaptive mapping must be >= 1.3x cheaper per warm step than \
         static BLOCK, got {gain:.2}x"
    );
    println!(
        "modeled warm-step speedup vs static BLOCK: {gain:.2}x \
         (realized cost {})",
        match e.realized_cost {
            Some(c) => format!("{c:.1}us/step"),
            None => "pending".to_string(),
        }
    );

    // and adaptation never changed the numbers: replay the same
    // trajectory on a never-adapted twin and compare bit for bit
    let mut twin = Session::new(build_program());
    twin.run(timesteps).unwrap();
    assert_eq!(
        session.program().arrays[0].to_dense(),
        twin.program().arrays[0].to_dense(),
        "adaptive execution must be bit-identical to the static run"
    );
    println!("adaptive ≡ static: dense results identical after {timesteps} timesteps");
}
