use crate::TemplateError;
use hpf_core::{
    reduce, AlignSpec, AlignmentFn, DistributeSpec, Distribution, EffectiveDist, ProcSet,
};
use hpf_index::{Idx, IndexDomain, Region};
use hpf_procs::{ProcId, ProcSpace, ProcTarget};
use std::collections::HashMap;
use std::sync::Arc;

/// Identifier of an entity (array or template) in a [`TemplateModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EntityId(usize);

/// What an entity is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntityKind {
    /// A data array.
    Array,
    /// A template: "an abstract index space that can be distributed and
    /// with which arrays may be aligned" — occupies no storage, tagged by
    /// identity.
    Template,
}

#[derive(Debug, Clone)]
struct Entity {
    name: String,
    kind: EntityKind,
    domain: IndexDomain,
    align: Option<(EntityId, Arc<AlignmentFn>)>,
    dist: Option<Arc<Distribution>>,
}

/// The HPF 1.0-draft mapping model: arrays and templates, align chains of
/// arbitrary height, distributions on ultimate align targets.
///
/// Each template created "must be interpreted as a tagged index domain"
/// (§8): two templates with identical shapes are distinct entities here by
/// construction.
#[derive(Debug, Clone)]
pub struct TemplateModel {
    procs: ProcSpace,
    entities: Vec<Entity>,
    by_name: HashMap<String, EntityId>,
}

impl TemplateModel {
    /// Create a model over `np` abstract processors.
    pub fn new(np: usize) -> Self {
        let mut procs = ProcSpace::new(np);
        procs
            .declare_array("__AP", IndexDomain::of_shape(&[np]).expect("rank 1"))
            .expect("fresh space");
        TemplateModel { procs, entities: Vec::new(), by_name: HashMap::new() }
    }

    /// The processor space.
    pub fn procs(&self) -> &ProcSpace {
        &self.procs
    }

    /// Declare a processor arrangement.
    pub fn declare_processors(
        &mut self,
        name: &str,
        domain: IndexDomain,
    ) -> Result<(), TemplateError> {
        self.procs.declare_array(name, domain).map_err(hpf_core::HpfError::from)?;
        Ok(())
    }

    /// `!HPF$ TEMPLATE T(shape)` — create a tagged abstract index space.
    pub fn template(&mut self, name: &str, domain: IndexDomain) -> Result<EntityId, TemplateError> {
        self.insert(name, EntityKind::Template, domain)
    }

    /// Declare a data array.
    pub fn array(&mut self, name: &str, domain: IndexDomain) -> Result<EntityId, TemplateError> {
        self.insert(name, EntityKind::Array, domain)
    }

    /// §8.2(1), executable: `ALLOCATABLE` templates do not exist. The HPF
    /// draft fixes template shapes at unit entry via specification
    /// expressions, so an allocatable template is a contradiction — this
    /// method always fails, and the test suite pins that behaviour.
    pub fn allocatable_template(&mut self, name: &str) -> Result<EntityId, TemplateError> {
        Err(TemplateError::TemplateNotAllocatable(name.to_string()))
    }

    fn insert(
        &mut self,
        name: &str,
        kind: EntityKind,
        domain: IndexDomain,
    ) -> Result<EntityId, TemplateError> {
        if self.by_name.contains_key(name) {
            return Err(TemplateError::Duplicate(name.to_string()));
        }
        let id = EntityId(self.entities.len());
        self.entities.push(Entity { name: name.to_string(), kind, domain, align: None, dist: None });
        self.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Look up by name.
    pub fn by_name(&self, name: &str) -> Result<EntityId, TemplateError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| TemplateError::Unknown(name.to_string()))
    }

    /// Entity name.
    pub fn name(&self, id: EntityId) -> &str {
        &self.entities[id.0].name
    }

    /// Entity kind.
    pub fn kind(&self, id: EntityId) -> EntityKind {
        self.entities[id.0].kind
    }

    /// Entity index domain.
    pub fn domain(&self, id: EntityId) -> &IndexDomain {
        &self.entities[id.0].domain
    }

    /// `!HPF$ ALIGN alignee(...) WITH target(...)` — target may be an array
    /// or a template; chains are allowed (the alignee's ultimate align
    /// target is found by walking them).
    pub fn align(
        &mut self,
        alignee: EntityId,
        target: EntityId,
        spec: &AlignSpec,
    ) -> Result<(), TemplateError> {
        if self.entities[alignee.0].align.is_some() {
            return Err(TemplateError::AlreadyAligned(self.name(alignee).to_string()));
        }
        if self.entities[alignee.0].dist.is_some() {
            return Err(TemplateError::AlignedEntityDistributed(
                self.name(alignee).to_string(),
            ));
        }
        // cycle check: walking from target must not reach alignee
        let mut cur = Some(target);
        while let Some(c) = cur {
            if c == alignee {
                return Err(TemplateError::AlignmentCycle(self.name(alignee).to_string()));
            }
            cur = self.entities[c.0].align.as_ref().map(|(t, _)| *t);
        }
        let f = reduce(spec, &self.entities[alignee.0].domain, &self.entities[target.0].domain)?;
        self.entities[alignee.0].align = Some((target, Arc::new(f)));
        Ok(())
    }

    /// `!HPF$ DISTRIBUTE target(formats) [TO procs]` — only ultimate align
    /// targets (unaligned entities) may be distributed.
    pub fn distribute(&mut self, id: EntityId, spec: &DistributeSpec) -> Result<(), TemplateError> {
        if self.entities[id.0].align.is_some() {
            return Err(TemplateError::AlignedEntityDistributed(self.name(id).to_string()));
        }
        let target = match &spec.target {
            None => ProcTarget::whole(
                &self.procs,
                self.procs.by_name("__AP").map_err(hpf_core::HpfError::from)?,
            )
            .map_err(hpf_core::HpfError::from)?,
            Some(t) => t.resolve(&self.procs)?,
        };
        let d = Distribution::new(
            &self.entities[id.0].name,
            &self.entities[id.0].domain,
            &spec.formats,
            target,
            &self.procs,
        )?;
        self.entities[id.0].dist = Some(Arc::new(d));
        Ok(())
    }

    /// The ultimate align target of an entity (itself if unaligned) and
    /// the chain depth walked to reach it.
    pub fn ultimate_target(&self, id: EntityId) -> (EntityId, usize) {
        let mut cur = id;
        let mut depth = 0;
        while let Some((t, _)) = &self.entities[cur.0].align {
            cur = *t;
            depth += 1;
        }
        (cur, depth)
    }

    /// Resolve the effective distribution by composing the align chain on
    /// top of the ultimate target's distribution.
    pub fn resolve(&self, id: EntityId) -> Result<Arc<EffectiveDist>, TemplateError> {
        let e = &self.entities[id.0];
        match (&e.align, &e.dist) {
            (None, Some(d)) => Ok(Arc::new(EffectiveDist::Direct(d.clone()))),
            (None, None) => Err(TemplateError::NoDistribution(e.name.clone())),
            (Some((t, f)), _) => {
                let base = self.resolve(*t)?;
                Ok(Arc::new(EffectiveDist::Aligned { align: f.clone(), base }))
            }
        }
    }

    /// Owners of one element of an entity.
    pub fn owners(&self, id: EntityId, i: &Idx) -> Result<ProcSet, TemplateError> {
        Ok(self.resolve(id)?.owners(i))
    }

    /// The region of an entity owned by processor `p`.
    pub fn owned_region(&self, id: EntityId, p: ProcId) -> Result<Region, TemplateError> {
        Ok(self.resolve(id)?.owned_region(p))
    }

    /// §8.2(2), executable: describing a dummy argument's mapping inside a
    /// procedure requires referring to the actual's template — which is not
    /// visible there. If the entity's ultimate align target is a template,
    /// this fails exactly as the paper describes; if it is an array (or the
    /// entity is unaligned), the description works.
    pub fn describe_in_procedure(
        &self,
        id: EntityId,
        procedure: &str,
    ) -> Result<Arc<EffectiveDist>, TemplateError> {
        let (root, _) = self.ultimate_target(id);
        if self.entities[root.0].kind == EntityKind::Template && root != id {
            return Err(TemplateError::TemplateNotVisibleInProcedure {
                template: self.entities[root.0].name.clone(),
                procedure: procedure.to_string(),
            });
        }
        self.resolve(id)
    }

    /// Templates occupy no storage and cannot be read or written — any
    /// attempt to use one as data is a compile-time error in HPF; here it
    /// is a checked error.
    pub fn read_element(&self, id: EntityId, _i: &Idx) -> Result<(), TemplateError> {
        match self.entities[id.0].kind {
            EntityKind::Template => {
                Err(TemplateError::TemplateNotFirstClass(self.name(id).to_string()))
            }
            EntityKind::Array => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_core::{AlignExpr as E, FormatSpec};

    fn dom2(b: &[(i64, i64); 2]) -> IndexDomain {
        IndexDomain::standard(b).unwrap()
    }

    /// Build the §8.1.1 Thole staggered-grid program in the template model.
    fn thole(n: i64, np_side: usize, formats: Vec<FormatSpec>) -> (TemplateModel, EntityId, EntityId, EntityId) {
        let mut m = TemplateModel::new(np_side * np_side);
        m.declare_processors(
            "PGRID",
            IndexDomain::of_shape(&[np_side, np_side]).unwrap(),
        )
        .unwrap();
        let t = m.template("T", dom2(&[(0, 2 * n), (0, 2 * n)])).unwrap();
        let p = m.array("P", dom2(&[(1, n), (1, n)])).unwrap();
        let u = m.array("U", dom2(&[(0, n), (1, n)])).unwrap();
        let v = m.array("V", dom2(&[(1, n), (0, n)])).unwrap();
        // ALIGN P(I,J) WITH T(2*I−1, 2*J−1)
        m.align(p, t, &AlignSpec::with_exprs(2, vec![E::dummy(0) * 2 - 1, E::dummy(1) * 2 - 1]))
            .unwrap();
        // ALIGN U(I,J) WITH T(2*I, 2*J−1)
        m.align(u, t, &AlignSpec::with_exprs(2, vec![E::dummy(0) * 2, E::dummy(1) * 2 - 1]))
            .unwrap();
        // ALIGN V(I,J) WITH T(2*I−1, 2*J)
        m.align(v, t, &AlignSpec::with_exprs(2, vec![E::dummy(0) * 2 - 1, E::dummy(1) * 2]))
            .unwrap();
        m.distribute(t, &DistributeSpec::to(formats, "PGRID")).unwrap();
        (m, p, u, v)
    }

    #[test]
    fn template_is_tagged_index_domain() {
        let mut m = TemplateModel::new(4);
        let t1 = m.template("T1", dom2(&[(1, 8), (1, 8)])).unwrap();
        let t2 = m.template("T2", dom2(&[(1, 8), (1, 8)])).unwrap();
        assert_ne!(t1, t2, "same shape, distinct identity");
        assert_eq!(m.kind(t1), EntityKind::Template);
        assert!(m.read_element(t1, &Idx::d2(1, 1)).is_err());
    }

    #[test]
    fn align_chain_and_ultimate_target() {
        let mut m = TemplateModel::new(4);
        let t = m.template("T", dom2(&[(1, 16), (1, 16)])).unwrap();
        let b = m.array("B", dom2(&[(1, 16), (1, 16)])).unwrap();
        let a = m.array("A", dom2(&[(1, 16), (1, 16)])).unwrap();
        m.align(b, t, &AlignSpec::identity(2)).unwrap();
        m.align(a, b, &AlignSpec::identity(2)).unwrap(); // height-2 chain!
        let (root, depth) = m.ultimate_target(a);
        assert_eq!(root, t);
        assert_eq!(depth, 2);
        // resolution works through the chain once T is distributed
        m.declare_processors("G", IndexDomain::of_shape(&[2, 2]).unwrap()).unwrap();
        m.distribute(t, &DistributeSpec::to(vec![FormatSpec::Block, FormatSpec::Block], "G"))
            .unwrap();
        for i in [Idx::d2(1, 1), Idx::d2(9, 9), Idx::d2(16, 1)] {
            assert_eq!(m.owners(a, &i).unwrap(), m.owners(b, &i).unwrap());
        }
    }

    #[test]
    fn cycle_rejected() {
        let mut m = TemplateModel::new(2);
        let a = m.array("A", dom2(&[(1, 4), (1, 4)])).unwrap();
        let b = m.array("B", dom2(&[(1, 4), (1, 4)])).unwrap();
        m.align(a, b, &AlignSpec::identity(2)).unwrap();
        assert!(matches!(
            m.align(b, a, &AlignSpec::identity(2)),
            Err(TemplateError::AlignmentCycle(_))
        ));
    }

    #[test]
    fn aligned_entity_cannot_be_distributed() {
        let mut m = TemplateModel::new(2);
        let t = m.template("T", dom2(&[(1, 4), (1, 4)])).unwrap();
        let a = m.array("A", dom2(&[(1, 4), (1, 4)])).unwrap();
        m.align(a, t, &AlignSpec::identity(2)).unwrap();
        assert!(matches!(
            m.distribute(a, &DistributeSpec::new(vec![FormatSpec::Block, FormatSpec::Collapsed])),
            Err(TemplateError::AlignedEntityDistributed(_))
        ));
    }

    #[test]
    fn unresolved_without_distribution() {
        let mut m = TemplateModel::new(2);
        let t = m.template("T", dom2(&[(1, 4), (1, 4)])).unwrap();
        let a = m.array("A", dom2(&[(1, 4), (1, 4)])).unwrap();
        m.align(a, t, &AlignSpec::identity(2)).unwrap();
        assert!(matches!(m.resolve(a), Err(TemplateError::NoDistribution(_))));
    }

    #[test]
    fn thole_cyclic_separates_all_neighbours() {
        // §8.1.1: "the distribution (CYCLIC,CYCLIC)::T results in the worst
        // possible effect, viz. different processor allocations for any two
        // neighbors"
        let n = 8;
        let (m, p, u, _v) = thole(n, 2, vec![FormatSpec::Cyclic(1), FormatSpec::Cyclic(1)]);
        for i in 1..=n {
            for j in 1..=n {
                // P(I,J) vs its stencil operand U(I,J)
                let po = m.owners(p, &Idx::d2(i, j)).unwrap();
                let uo = m.owners(u, &Idx::d2(i, j)).unwrap();
                assert!(!po.intersects(&uo), "P({i},{j}) collocated with U({i},{j})!");
                let uo2 = m.owners(u, &Idx::d2(i - 1, j)).unwrap();
                assert!(!po.intersects(&uo2), "P({i},{j}) collocated with U({},{j})!", i - 1);
            }
        }
    }

    #[test]
    fn thole_block_collocates_interior() {
        // with (BLOCK,BLOCK) on T(0:2N,0:2N) most neighbours are collocated
        let n = 8;
        let (m, p, u, _v) = thole(n, 2, vec![FormatSpec::Block, FormatSpec::Block]);
        let mut local = 0usize;
        let mut remote = 0usize;
        for i in 1..=n {
            for j in 1..=n {
                let po = m.owners(p, &Idx::d2(i, j)).unwrap();
                for uo in [
                    m.owners(u, &Idx::d2(i, j)).unwrap(),
                    m.owners(u, &Idx::d2(i - 1, j)).unwrap(),
                ] {
                    if po.intersects(&uo) {
                        local += 1;
                    } else {
                        remote += 1;
                    }
                }
            }
        }
        assert!(local > remote, "local={local} remote={remote}");
    }

    #[test]
    fn critique_allocatable_template() {
        let mut m = TemplateModel::new(2);
        assert!(matches!(
            m.allocatable_template("T"),
            Err(TemplateError::TemplateNotAllocatable(_))
        ));
    }

    #[test]
    fn critique_template_across_procedure() {
        // §8.1.2: A(1000) CYCLIC(3) via template; SUB cannot describe X's
        // mapping because T is invisible there
        let mut m = TemplateModel::new(4);
        let t = m.template("T", IndexDomain::of_shape(&[1000]).unwrap()).unwrap();
        let a = m.array("A", IndexDomain::of_shape(&[1000]).unwrap()).unwrap();
        m.align(a, t, &AlignSpec::identity(1)).unwrap();
        m.distribute(t, &DistributeSpec::new(vec![FormatSpec::Cyclic(3)])).unwrap();
        // inside the caller, A resolves fine
        assert!(m.resolve(a).is_ok());
        // inside SUB, the description fails: the root is a template
        assert!(matches!(
            m.describe_in_procedure(a, "SUB"),
            Err(TemplateError::TemplateNotVisibleInProcedure { .. })
        ));
        // an array-rooted mapping, by contrast, crosses the boundary fine
        let b = m.array("B", IndexDomain::of_shape(&[500]).unwrap()).unwrap();
        let c = m.array("C", IndexDomain::of_shape(&[500]).unwrap()).unwrap();
        m.distribute(b, &DistributeSpec::new(vec![FormatSpec::Block])).unwrap();
        m.align(c, b, &AlignSpec::identity(1)).unwrap();
        assert!(m.describe_in_procedure(c, "SUB").is_ok());
    }

    #[test]
    fn duplicate_and_unknown_names() {
        let mut m = TemplateModel::new(2);
        m.template("T", dom2(&[(1, 4), (1, 4)])).unwrap();
        assert!(matches!(
            m.template("T", dom2(&[(1, 4), (1, 4)])),
            Err(TemplateError::Duplicate(_))
        ));
        assert!(matches!(m.by_name("X"), Err(TemplateError::Unknown(_))));
        assert_eq!(m.by_name("T").unwrap(), EntityId(0));
    }

    #[test]
    fn double_align_rejected() {
        let mut m = TemplateModel::new(2);
        let t = m.template("T", dom2(&[(1, 4), (1, 4)])).unwrap();
        let a = m.array("A", dom2(&[(1, 4), (1, 4)])).unwrap();
        m.align(a, t, &AlignSpec::identity(2)).unwrap();
        assert!(matches!(
            m.align(a, t, &AlignSpec::identity(2)),
            Err(TemplateError::AlreadyAligned(_))
        ));
    }
}
