//! Dynamic redistribution paying for itself (§4.2's motivation).
//!
//! A two-phase computation over `X(1:N)`:
//!
//! * phase 1 — uniform sweeps: every element costs 1 op; `BLOCK` is ideal;
//! * phase 2 — skewed sweeps: element `i` costs ~`i` ops; `BLOCK` leaves
//!   the last processor with ~2× the average load.
//!
//! A `DYNAMIC` array can `REDISTRIBUTE` to a weight-balanced
//! `GENERAL_BLOCK` between the phases. This example prices both plans —
//! static BLOCK vs redistribute-in-the-middle — including the *cost of the
//! redistribution itself* (computed exactly by `remap_analysis`), and
//! shows the crossover as phase-2 gets longer.
//!
//! It then *runs* the two-phase trajectory through the fused program
//! plan: the three sweep statements are level-scheduled into supersteps,
//! the never-written coefficient array's ghost regions stop being re-sent
//! after the cold timestep, and the mid-trajectory `REDISTRIBUTE`
//! invalidates exactly the plans that involve the remapped array — while
//! staying bit-identical to the unfused per-statement execution.
//!
//! Run with: `cargo run --release --example dynamic_rebalance`

use hpf::prelude::*;
use hpf::runtime::remap_analysis;
use hpf_core::GeneralBlock;

const N: usize = 100_000;
const NP: usize = 8;

fn phase_time(machine: &Machine, map: &EffectiveDist, weights: &[u64]) -> f64 {
    let mut loads = vec![0u64; NP];
    for p in 1..=NP as u32 {
        for i in map.owned_region(ProcId(p)).iter() {
            loads[(p - 1) as usize] += weights[(i[0] - 1) as usize];
        }
    }
    machine.superstep_time(&loads, &CommStats::new()).total_time()
}

fn main() {
    let machine = Machine::new(NP, Topology::Ring, CostModel::default());
    let uniform: Vec<u64> = vec![1; N];
    let skewed: Vec<u64> = (1..=N as u64).map(|i| i / 5000 + 30).collect();

    // mappings
    let mut ds = DataSpace::new(NP);
    let x = ds.declare("X", IndexDomain::of_shape(&[N]).unwrap()).unwrap();
    ds.set_dynamic(x);
    ds.distribute(x, &DistributeSpec::new(vec![FormatSpec::Block])).unwrap();
    let block = ds.effective(x).unwrap();

    let gb = GeneralBlock::balanced(&skewed, NP).unwrap();
    let bounds: Vec<i64> = (1..NP).map(|j| gb.bound(j)).collect();
    ds.redistribute(x, &DistributeSpec::new(vec![FormatSpec::GeneralBlock(bounds)]))
        .unwrap();
    let balanced = ds.effective(x).unwrap();

    // the redistribution event itself
    let remap = remap_analysis(&block, &balanced, NP);
    let remap_time = machine
        .superstep_time(&[], &remap.comm)
        .total_time();
    println!(
        "REDISTRIBUTE X(BLOCK) → X(GENERAL_BLOCK): {} of {} elements move \
         ({:.1}%), est. {:.0} µs\n",
        remap.moved,
        N,
        remap.moved_fraction() * 100.0,
        remap_time
    );

    let t1_block = phase_time(&machine, &block, &uniform);
    let t2_block = phase_time(&machine, &block, &skewed);
    let t2_bal = phase_time(&machine, &balanced, &skewed);

    println!(
        "{:>14} {:>16} {:>22} {:>10}",
        "phase-2 sweeps", "static BLOCK (µs)", "redistribute plan (µs)", "winner"
    );
    for sweeps in [0u32, 1, 2, 5, 10, 20, 50] {
        let s = sweeps as f64;
        let static_plan = t1_block + s * t2_block;
        let dynamic_plan = t1_block + remap_time + s * t2_bal;
        println!(
            "{sweeps:>14} {static_plan:>17.0} {dynamic_plan:>22.0} {:>10}",
            if dynamic_plan < static_plan { "dynamic" } else { "static" }
        );
    }
    println!(
        "\nthe paper's §4.2 point: REDISTRIBUTE is worth a one-off data motion\n\
         once enough skewed work follows — and GENERAL_BLOCK (not available\n\
         in HPF) is what the balanced target distribution is written in.\n"
    );

    run_two_phase(block, balanced, &mut ds);
}

/// Execute the two-phase trajectory for real — phase 1 under BLOCK, a
/// mid-trajectory REDISTRIBUTE, phase 2 under the balanced
/// GENERAL_BLOCK — through the fused program plan, twinned against the
/// unfused per-statement execution.
fn run_two_phase(
    block: std::sync::Arc<EffectiveDist>,
    balanced: std::sync::Arc<EffectiveDist>,
    ds: &mut DataSpace,
) {
    let y = ds.declare("Y", IndexDomain::of_shape(&[N]).unwrap()).unwrap();
    ds.distribute(y, &DistributeSpec::new(vec![FormatSpec::Block])).unwrap();
    let y_map = ds.effective(y).unwrap();
    let c = ds.declare("C", IndexDomain::of_shape(&[N]).unwrap()).unwrap();
    ds.distribute(c, &DistributeSpec::new(vec![FormatSpec::Block])).unwrap();
    let c_map = ds.effective(c).unwrap();

    let arrays = vec![
        DistArray::from_fn("X", block, NP, |i| (i[0] % 97) as f64),
        DistArray::from_fn("Y", y_map, NP, |_| 0.0),
        DistArray::from_fn("C", c_map, NP, |i| 1.0 / (i[0] as f64 + 1.0)),
    ];
    let doms: Vec<&IndexDomain> = arrays.iter().map(|a| a.domain()).collect();
    let n = N as i64;
    // X smooths itself, Y samples the smoothed field, then folds in the
    // *constant* coefficients C — a 3-statement, 3-superstep chain
    let stmts = vec![
        Assignment::new(
            0,
            Section::from_triplets(vec![span(2, n - 1)]),
            vec![
                Term::new(0, Section::from_triplets(vec![span(1, n - 2)])),
                Term::new(0, Section::from_triplets(vec![span(3, n)])),
            ],
            Combine::Average,
            &doms,
        )
        .unwrap(),
        Assignment::new(
            1,
            Section::from_triplets(vec![span(2, n - 1)]),
            vec![
                Term::new(0, Section::from_triplets(vec![span(1, n - 2)])),
                Term::new(0, Section::from_triplets(vec![span(3, n)])),
            ],
            Combine::Average,
            &doms,
        )
        .unwrap(),
        Assignment::new(
            1,
            Section::from_triplets(vec![span(2, n - 1)]),
            vec![
                Term::new(1, Section::from_triplets(vec![span(2, n - 1)])),
                Term::new(2, Section::from_triplets(vec![span(1, n - 2)])),
            ],
            Combine::Sum,
            &doms,
        )
        .unwrap(),
    ];

    let mut fused = Program::new(arrays.clone());
    let mut unfused = Program::new(arrays);
    for s in &stmts {
        fused.push(s.clone()).unwrap();
        unfused.push(s.clone()).unwrap();
    }
    let mut fused = Session::new(fused);
    let mut unfused = Session::new(unfused).fused(false);

    const PHASE: u64 = 3;
    fused.run(PHASE).unwrap();
    unfused.run(PHASE).unwrap();
    assert_eq!(fused.program().cache_misses(), 3, "one inspection per statement");
    let fs = fused.program().fusion_stats();
    println!("phase 1 (BLOCK, {PHASE} timesteps): {fs}");
    assert!(
        fs.ghost_bytes_avoided() > 0,
        "C is never written — its ghosts must stop moving after the cold \
         timestep: {fs}"
    );

    // mid-trajectory REDISTRIBUTE: every cached plan involving X is
    // invalidated (the fused program plan with them); Y+C's statement
    // survives untouched
    let moved = fused.program_mut().remap(0, balanced.clone()).unwrap();
    unfused.program_mut().remap(0, balanced).unwrap();
    println!(
        "REDISTRIBUTE mid-trajectory: {} elements moved, fused plan rebuilt",
        moved.moved
    );
    fused.run(PHASE).unwrap();
    unfused.run(PHASE).unwrap();
    assert_eq!(
        fused.program().cache_misses(),
        5,
        "remap re-inspects the two X statements; the Y+C plan survives"
    );
    for k in 0..3 {
        assert_eq!(
            fused.program().arrays[k].to_dense(),
            unfused.program().arrays[k].to_dense(),
            "fused and per-statement execution must agree bit for bit"
        );
    }
    let fs = fused.program().fusion_stats();
    println!("phase 2 (GENERAL_BLOCK, {PHASE} timesteps): {fs}");
    println!(
        "\nfused ≡ unfused across the whole remapped trajectory; \
         {} ghost bytes never re-sent.",
        fs.ghost_bytes_avoided()
    );
}
