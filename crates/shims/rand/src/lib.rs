//! Offline shim for the `rand` crate.
//!
//! No crates.io access is available in the build environment, so this
//! provides the tiny slice of the rand API the workspace uses:
//! `rand::rngs::StdRng`, `rand::SeedableRng::seed_from_u64`, and
//! `rand::RngExt::random_range`. The generator is SplitMix64 — not
//! cryptographic, but statistically fine for generating benchmark
//! workloads, and deterministic per seed like the real `StdRng`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core uniform-integer sampling, named after rand 0.9's `Rng` extension
/// trait (`random_range` replaced `gen_range`).
pub trait RngExt {
    /// The next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from the given range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Sample uniformly from `self`.
    fn sample<G: RngExt>(self, rng: &mut G) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<G: RngExt>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<G: RngExt>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngExt, SeedableRng};

    /// The shim's standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15) }
        }
    }

    impl RngExt for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u64 = a.random_range(1..=17u64);
            let y: u64 = b.random_range(1..=17u64);
            assert_eq!(x, y);
            assert!((1..=17).contains(&x));
        }
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        let mut uniq = xs.clone();
        uniq.dedup();
        assert_eq!(xs.len(), uniq.len(), "SplitMix64 must not repeat immediately");
    }

    #[test]
    fn signed_ranges() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let v: i64 = r.random_range(-5i64..5);
            assert!((-5..5).contains(&v));
        }
    }
}
