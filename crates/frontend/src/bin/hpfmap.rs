//! `hpfmap` — a mapping inspector for the directive sub-language.
//!
//! Reads a Fortran-with-`!HPF$`-directives source file, elaborates it, and
//! prints the elaboration narrative, the final descriptors, and (on
//! request) per-array owner maps and ownership histograms.
//!
//! ```text
//! hpfmap PROGRAM.f [--np N] [--set NAME=VALUE]... [--owners ARRAY[:COUNT]]
//! ```
//!
//! Example:
//! ```text
//! cargo run -p hpf-frontend --bin hpfmap -- program.f --np 8 --set N=64 --owners A:16
//! ```

use hpf_core::inquiry;
use hpf_frontend::Elaborator;
use std::process::ExitCode;

struct Args {
    file: String,
    np: usize,
    sets: Vec<(String, i64)>,
    owners: Vec<(String, usize)>,
}

fn usage() -> ! {
    eprintln!(
        "usage: hpfmap FILE [--np N] [--set NAME=VALUE]... [--owners ARRAY[:COUNT]]...\n\
         \n\
         elaborates the !HPF$ directives in FILE over N abstract processors\n\
         (default 4) and prints the resulting data mapping.\n\
         --set provides PARAMETER/READ inputs; --owners prints the first\n\
         COUNT (default 16) owner entries of an array."
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args { file: String::new(), np: 4, sets: Vec::new(), owners: Vec::new() };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--np" => {
                args.np = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--set" => {
                let kv = it.next().unwrap_or_else(|| usage());
                let (k, v) = kv.split_once('=').unwrap_or_else(|| usage());
                let v: i64 = v.parse().unwrap_or_else(|_| usage());
                args.sets.push((k.to_string(), v));
            }
            "--owners" => {
                let spec = it.next().unwrap_or_else(|| usage());
                let (name, count) = match spec.split_once(':') {
                    Some((n, c)) => (n.to_string(), c.parse().unwrap_or(16)),
                    None => (spec, 16),
                };
                args.owners.push((name, count));
            }
            "--help" | "-h" => usage(),
            f if args.file.is_empty() && !f.starts_with('-') => args.file = f.to_string(),
            _ => usage(),
        }
    }
    if args.file.is_empty() {
        usage();
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let src = match std::fs::read_to_string(&args.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("hpfmap: cannot read {}: {e}", args.file);
            return ExitCode::FAILURE;
        }
    };
    let mut elab = Elaborator::new(args.np);
    for (k, v) in &args.sets {
        elab = elab.with_input(k, *v);
    }
    let result = match elab.run(&src) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("hpfmap: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("— elaboration ({} abstract processors) —", args.np);
    print!("{}", result.report);

    println!("\n— final mapping descriptors —");
    for id in result.space.all_arrays() {
        print!("  {}", inquiry::describe(&result.space, id));
        if let Some(axes) = inquiry::align_descriptor(&result.space, id) {
            let rendered: Vec<String> = axes.iter().map(|a| a.to_string()).collect();
            print!("  α=({})", rendered.join(", "));
        }
        println!();
    }

    for (name, count) in &args.owners {
        let Some(id) = result.array(name) else {
            eprintln!("hpfmap: no array `{name}`");
            return ExitCode::FAILURE;
        };
        let Some(dom) = result.space.domain(id).cloned() else {
            eprintln!("hpfmap: `{name}` is not allocated");
            return ExitCode::FAILURE;
        };
        println!("\n— owners of {name}{dom} (first {count}) —");
        for (k, i) in dom.iter().enumerate() {
            if k >= *count {
                break;
            }
            match result.space.owners(id, &i) {
                Ok(o) => println!("  {name}{i} → {o}"),
                Err(e) => {
                    eprintln!("hpfmap: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        if let Ok(hist) = inquiry::ownership_histogram(&result.space, id) {
            let counts: Vec<String> =
                hist.iter().map(|(p, n)| format!("{p}:{n}")).collect();
            println!("  histogram: {}", counts.join(" "));
        }
    }
    ExitCode::SUCCESS
}
