//! E4 (§1, §4.1.2) — GENERAL_BLOCK load balancing: imbalance and sweep
//! communication for BLOCK / BLOCK_BALANCED / CYCLIC / GENERAL_BLOCK on
//! triangular and random workloads.

use hpf_bench::{mapping_1d, random_weights, triangular_weights};
use hpf_core::{FormatSpec, GeneralBlock};
use hpf_index::{span, Section};
use hpf_machine::{CostModel, Machine, Topology};
use hpf_procs::ProcId;
use hpf_runtime::{comm_analysis, Assignment, Combine, Term};

fn run(workload: &str, weights: &[u64], np: usize) {
    let n = weights.len();
    let machine = Machine::new(np, Topology::Ring, CostModel::default());
    println!("workload = {workload}, N = {n}, NP = {np} (ring)");
    println!(
        "  {:<16} {:>14} {:>11} {:>12} {:>10}",
        "scheme", "max load", "imbalance", "comm elems", "est. µs"
    );
    let gb = GeneralBlock::balanced(weights, np).unwrap();
    let bounds: Vec<i64> = (1..np).map(|j| gb.bound(j)).collect();
    for (label, fmt) in [
        ("BLOCK", FormatSpec::Block),
        ("BLOCK_BALANCED", FormatSpec::BlockBalanced),
        ("CYCLIC", FormatSpec::Cyclic(1)),
        ("GENERAL_BLOCK", FormatSpec::GeneralBlock(bounds)),
    ] {
        let map = mapping_1d(n, np, fmt);
        let mut loads = vec![0u64; np];
        for p in 1..=np as u32 {
            for i in map.owned_region(ProcId(p)).iter() {
                loads[(p - 1) as usize] += weights[(i[0] - 1) as usize];
            }
        }
        let doms = vec![map.domain()];
        let stmt = Assignment::new(
            0,
            Section::from_triplets(vec![span(2, n as i64)]),
            vec![Term::new(0, Section::from_triplets(vec![span(1, n as i64 - 1)]))],
            Combine::Copy,
            &doms,
        )
        .unwrap();
        let analysis = comm_analysis(&[map], np, &stmt);
        let rep = machine.superstep_time(&loads, &analysis.comm);
        println!(
            "  {label:<16} {:>14} {:>10.2}x {:>12} {:>10.0}",
            loads.iter().max().unwrap(),
            rep.imbalance,
            analysis.comm.total_elements(),
            rep.total_time(),
        );
    }
    println!();
}

fn main() {
    println!("E4 — GENERAL_BLOCK \"is important for the support of load balancing\"\n");
    for np in [8usize, 64] {
        run("triangular (weight i)", &triangular_weights(100_000), np);
        run("random [1,1000]", &random_weights(100_000, 1000, 7), np);
    }
    println!(
        "claims reproduced: GENERAL_BLOCK reaches CYCLIC-grade balance\n\
         (imbalance → 1.0) while keeping the sweep's neighbour traffic at\n\
         NP−1 boundary elements, where CYCLIC pays ~N."
    );
}
