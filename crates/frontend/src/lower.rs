//! Lowering: an elaborated translation unit → a runtime [`Program`].
//!
//! This is the layer that closes the pipeline the paper describes: the
//! directives have been elaborated into [`hpf_core::EffectiveDist`]
//! mappings, the statement surface into resolved section assignments and
//! evaluated fills — lowering turns both into distributed storage and a
//! multi-statement [`Program`] that executes through the inspector–executor
//! machinery (plan cache, program-level fusion, static verification)
//! unchanged.
//!
//! Lowering is total in the same way the recovering frontend is: every
//! problem (a non-conforming assignment, a fill after the timestep
//! statements began, a scalar in an array statement) is reported as a
//! span-carrying [`SourceDiagnostic`] and the rest of the program is still
//! built, so a driver can render all defects in one run.

use crate::elaborate::Elaboration;
use crate::error::FrontendError;
use crate::report::{Event, SourceDiagnostic};
use crate::token::Span;
use hpf_core::ArrayId;
use hpf_index::IndexDomain;
use hpf_runtime::{apply_dense, Assignment, Backend, Combine, DistArray, Program, Session, Term};
use std::collections::HashMap;

/// A lowered translation unit: the runtime program (arrays initialized
/// from the fills), plus the bookkeeping a driver or test needs to relate
/// runtime indices back to source names and spans.
#[derive(Debug)]
pub struct LoweredProgram {
    /// The runtime program, ready to run timesteps.
    pub program: Program,
    /// Array name of each runtime index (parallel to `program.arrays`).
    pub names: Vec<String>,
    /// The statements pushed into the program, in order (a copy — the
    /// program owns its own; kept so oracles can replay them).
    pub statements: Vec<Assignment>,
    /// Source span of each statement, parallel to `statements`.
    pub spans: Vec<Span>,
    /// Dense snapshot of every array *after fills, before any timestep* —
    /// the starting state of [`LoweredProgram::dense_oracle`].
    pub initial_dense: Vec<Vec<f64>>,
}

impl LoweredProgram {
    /// Runtime index of array `name`, if it was lowered.
    pub fn array(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Compute the expected dense value of every array after `steps`
    /// whole-program timesteps by naive element-wise evaluation, starting
    /// from the post-fill initial state. O(steps · statements · elements);
    /// never on the execution path — this is the oracle `--verify` and the
    /// equivalence tests compare distributed results against.
    pub fn dense_oracle(&self, steps: usize) -> Vec<Vec<f64>> {
        let domains: Vec<IndexDomain> =
            self.program.arrays.iter().map(|a| a.domain().clone()).collect();
        let mut dense = self.initial_dense.clone();
        for _ in 0..steps {
            for stmt in &self.statements {
                apply_dense(&mut dense, &domains, stmt);
            }
        }
        dense
    }

    /// Run `steps` timesteps on `backend` and compare every array,
    /// element for element, against [`LoweredProgram::dense_oracle`].
    /// Returns the first mismatch as a readable message. Must be called
    /// on a freshly lowered program (the oracle starts from the initial
    /// state).
    pub fn run_verified(&mut self, steps: usize, backend: Backend) -> Result<(), String> {
        let oracle = self.dense_oracle(steps);
        let program = std::mem::replace(&mut self.program, Program::new(Vec::new()));
        let mut session = Session::new(program).backend(backend);
        let outcome = session.run(steps as u64);
        self.program = session.into_program();
        outcome.map_err(|e| e.to_string())?;
        for (k, want) in oracle.iter().enumerate() {
            let got = self.program.arrays[k].to_dense();
            if &got != want {
                let at = got
                    .iter()
                    .zip(want)
                    .position(|(g, w)| g != w)
                    .expect("lengths equal, some element differs");
                return Err(format!(
                    "array `{}` diverges from the dense oracle after {} timestep(s): \
                     element {} is {} but the oracle says {}",
                    self.names[k], steps, at, got[at], want[at]
                ));
            }
        }
        Ok(())
    }
}

/// Lowers an [`Elaboration`] into a [`LoweredProgram`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Lowerer;

impl Lowerer {
    /// Lower `elab`, accumulating diagnostics instead of failing: arrays
    /// whose statements are defective are still created, and every valid
    /// statement still executes. An empty diagnostic vector means the
    /// whole unit lowered cleanly.
    pub fn lower(elab: &Elaboration) -> (LoweredProgram, Vec<SourceDiagnostic>) {
        let mut diags = Vec::new();
        let np = elab.space.np();

        // Deterministic array order: elaboration declaration order (ArrayId
        // is the DataSpace insertion index). Rank-0 scalars and
        // never-allocated allocatables have no distributed storage to
        // create; statements referencing them get diagnostics below.
        let mut ids: Vec<(&String, ArrayId)> =
            elab.arrays.iter().map(|(n, &id)| (n, id)).collect();
        ids.sort_by_key(|&(_, id)| id.0);
        let mut index: HashMap<ArrayId, usize> = HashMap::new();
        let mut names = Vec::new();
        let mut arrays: Vec<DistArray<f64>> = Vec::new();
        for (name, id) in ids {
            let Some(dom) = elab.space.domain(id) else { continue };
            if dom.rank() == 0 {
                continue;
            }
            let Ok(mapping) = elab.space.effective(id) else { continue };
            index.insert(id, arrays.len());
            names.push(name.clone());
            arrays.push(DistArray::new(name, mapping, np, 0.0));
        }

        // Walk the elaboration narrative in program order. Fills run once,
        // now, on the initial storage; assignments become the program's
        // timestep statements. A fill written after the first assignment
        // would run out of order, so it is rejected.
        let domains_owned: Vec<IndexDomain> =
            arrays.iter().map(|a| a.domain().clone()).collect();
        let mut statements: Vec<Assignment> = Vec::new();
        let mut spans: Vec<Span> = Vec::new();
        for ev in &elab.report.events {
            match ev {
                Event::Fill(f) => {
                    let Some(&k) = index.get(&f.array) else {
                        diags.push(SourceDiagnostic::new(
                            scalar_in_array_stmt(&f.name, f.span),
                            f.span,
                        ));
                        continue;
                    };
                    if !statements.is_empty() {
                        diags.push(SourceDiagnostic::new(
                            FrontendError::Parse {
                                line: f.span.line,
                                what: format!(
                                    "fill of `{}` after an array assignment — fills \
                                     initialize storage once and must precede the \
                                     timestep statements",
                                    f.name
                                ),
                            },
                            f.span,
                        ));
                        continue;
                    }
                    for (i, v) in &f.elements {
                        arrays[k].set(i, *v);
                    }
                }
                Event::Assignment(a) => {
                    let Some(&lhs) = index.get(&a.lhs) else {
                        diags.push(SourceDiagnostic::new(
                            scalar_in_array_stmt(&a.lhs_name, a.span),
                            a.span,
                        ));
                        continue;
                    };
                    let mut terms = Vec::with_capacity(a.terms.len());
                    let mut ok = true;
                    for (tname, tid, tsec) in &a.terms {
                        match index.get(tid) {
                            Some(&t) => terms.push(Term::new(t, tsec.clone())),
                            None => {
                                diags.push(SourceDiagnostic::new(
                                    scalar_in_array_stmt(tname, a.span),
                                    a.span,
                                ));
                                ok = false;
                            }
                        }
                    }
                    if !ok {
                        continue;
                    }
                    let combine =
                        if terms.len() == 1 { Combine::Copy } else { Combine::Sum };
                    let doms: Vec<&IndexDomain> = domains_owned.iter().collect();
                    match Assignment::new(lhs, a.lhs_section.clone(), terms, combine, &doms)
                    {
                        Ok(stmt) => {
                            statements.push(stmt);
                            spans.push(a.span);
                        }
                        Err(e) => diags.push(SourceDiagnostic::new(
                            FrontendError::Parse {
                                line: a.span.line,
                                what: format!("cannot lower assignment to `{}`: {e}", a.lhs_name),
                            },
                            a.span,
                        )),
                    }
                }
                _ => {}
            }
        }

        let initial_dense: Vec<Vec<f64>> = arrays.iter().map(DistArray::to_dense).collect();
        let mut program = Program::new(arrays);
        for stmt in &statements {
            program.push(stmt.clone()).expect("validated above against the same domains");
        }
        (
            LoweredProgram { program, names, statements, spans, initial_dense },
            diags,
        )
    }
}

fn scalar_in_array_stmt(name: &str, span: Span) -> FrontendError {
    FrontendError::Parse {
        line: span.line,
        what: format!(
            "`{name}` has no distributed storage (scalar or never-allocated array) — \
             it cannot appear in an array statement"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Elaborator;

    fn lower_src(src: &str) -> (LoweredProgram, Vec<SourceDiagnostic>) {
        let elab = Elaborator::new(4).run(src).expect("elaborates");
        Lowerer::lower(&elab)
    }

    #[test]
    fn quickstart_shape_lowers_and_runs() {
        let src = "\
      PROGRAM DEMO
      PARAMETER (N = 16)
      REAL A(N), B(N)
!HPF$ PROCESSORS P(4)
!HPF$ DISTRIBUTE A(BLOCK) TO P
!HPF$ DISTRIBUTE B(CYCLIC) TO P
      FORALL (I = 1:N) B(I) = I
      A(2:N) = B(1:N-1)
      END
";
        let (mut low, diags) = lower_src(src);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(low.names, vec!["A", "B"]);
        assert_eq!(low.statements.len(), 1);
        low.run_verified(3, Backend::SharedMem).unwrap();
    }

    #[test]
    fn bad_conformance_is_a_spanned_diagnostic() {
        let src = "\
      PROGRAM DEMO
      PARAMETER (N = 8)
      REAL A(N), B(N)
!HPF$ DISTRIBUTE A(BLOCK)
      A(1:4) = B(1:5)
      END
";
        let (low, diags) = lower_src(src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].span.line, 5);
        assert!(low.statements.is_empty());
        assert!(diags[0].to_string().contains("cannot lower assignment"), "{}", diags[0]);
    }

    #[test]
    fn fill_after_assignment_is_rejected() {
        let src = "\
      PROGRAM DEMO
      PARAMETER (N = 8)
      REAL A(N), B(N)
      A(1:N) = B(1:N)
      B = 1
      END
";
        let (_, diags) = lower_src(src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].to_string().contains("fill of `B` after"), "{}", diags[0]);
        assert_eq!(diags[0].span.line, 5);
    }
}
