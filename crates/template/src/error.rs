use hpf_core::HpfError;
use std::fmt;

/// Errors of the template model — including the §8.2 limitations the paper
/// documents, surfaced as checked errors so the critique is executable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TemplateError {
    /// An underlying mapping-model error.
    Core(HpfError),
    /// Entity name already declared.
    Duplicate(String),
    /// Unknown entity name.
    Unknown(String),
    /// §8.2(1): "Templates cannot handle allocatable arrays. [...] Methods
    /// to avoid this dilemma would include the definition of allocatable
    /// templates [...] (neither of which are a serious alternative)."
    TemplateNotAllocatable(String),
    /// §8.2(2): "Templates cannot be passed across procedure boundaries."
    /// Raised when a procedure-local description needs the caller's
    /// template.
    TemplateNotVisibleInProcedure {
        /// The template that would be needed.
        template: String,
        /// The procedure that cannot see it.
        procedure: String,
    },
    /// Templates may only appear in directives; they cannot be read,
    /// written or passed (they are "not first class objects").
    TemplateNotFirstClass(String),
    /// The entity is already aligned.
    AlreadyAligned(String),
    /// A distribution was given to an aligned entity.
    AlignedEntityDistributed(String),
    /// Alignment would create a cycle.
    AlignmentCycle(String),
    /// No distribution reachable through the align chain.
    NoDistribution(String),
    /// Template shapes are fixed at entry to the program unit: they use
    /// specification expressions, so run-time shapes are impossible
    /// ("the size of templates has to be a specification expression").
    TemplateShapeNotSpecTime(String),
}

impl fmt::Display for TemplateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemplateError::Core(e) => write!(f, "{e}"),
            TemplateError::Duplicate(n) => write!(f, "entity `{n}` already declared"),
            TemplateError::Unknown(n) => write!(f, "unknown entity `{n}`"),
            TemplateError::TemplateNotAllocatable(n) => write!(
                f,
                "§8.2(1): template `{n}` cannot be ALLOCATABLE — template shapes are \
                 specification expressions fixed at unit entry"
            ),
            TemplateError::TemplateNotVisibleInProcedure { template, procedure } => write!(
                f,
                "§8.2(2): template `{template}` cannot be passed across the procedure \
                 boundary into `{procedure}`; the dummy's mapping cannot be described"
            ),
            TemplateError::TemplateNotFirstClass(n) => write!(
                f,
                "template `{n}` is not a first-class object (directives only)"
            ),
            TemplateError::AlreadyAligned(n) => write!(f, "`{n}` is already aligned"),
            TemplateError::AlignedEntityDistributed(n) => {
                write!(f, "`{n}` is aligned; only ultimate align targets are distributed")
            }
            TemplateError::AlignmentCycle(n) => {
                write!(f, "aligning `{n}` would create an alignment cycle")
            }
            TemplateError::NoDistribution(n) => write!(
                f,
                "no distribution reachable from `{n}` through its align chain"
            ),
            TemplateError::TemplateShapeNotSpecTime(n) => write!(
                f,
                "template `{n}`'s shape must be a specification expression"
            ),
        }
    }
}

impl std::error::Error for TemplateError {}

impl From<HpfError> for TemplateError {
    fn from(e: HpfError) -> Self {
        TemplateError::Core(e)
    }
}
