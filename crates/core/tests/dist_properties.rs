//! Property tests on distribution functions (§4.1): totality, partition,
//! local-index bijectivity and owner-set queries against brute force, over
//! randomized formats including irregular GENERAL_BLOCK partitions.

use hpf_core::{DataSpace, DistributeSpec, FormatSpec, ProcSet};
use hpf_index::{triplet, Idx, IndexDomain, Rect};
use hpf_procs::ProcId;
use proptest::prelude::*;
use std::collections::HashMap;

/// A random format, including a random valid GENERAL_BLOCK (by sizes).
fn arb_format(n: usize, np: usize) -> impl Strategy<Value = FormatSpec> {
    let sizes = prop::collection::vec(0u32..8, np).prop_map(move |raw| {
        // normalize random sizes so they sum to n
        let total: u32 = raw.iter().sum::<u32>().max(1);
        let mut sizes: Vec<i64> =
            raw.iter().map(|&r| (r as usize * n / total as usize) as i64).collect();
        let assigned: i64 = sizes.iter().sum();
        sizes[np - 1] += n as i64 - assigned;
        FormatSpec::GeneralBlockSizes(sizes)
    });
    prop_oneof![
        Just(FormatSpec::Block),
        Just(FormatSpec::BlockBalanced),
        (1u64..6).prop_map(FormatSpec::Cyclic),
        sizes,
    ]
}

#[derive(Debug, Clone)]
struct Case {
    n: usize,
    np: usize,
    lower: i64,
    fmt: FormatSpec,
}

fn arb_case() -> impl Strategy<Value = Case> {
    (4usize..60, 1usize..7, -15i64..15)
        .prop_flat_map(|(n, np, lower)| {
            arb_format(n, np).prop_map(move |fmt| Case { n, np, lower, fmt })
        })
}

fn build(case: &Case) -> (DataSpace, hpf_core::ArrayId) {
    let mut ds = DataSpace::new(case.np);
    let dom =
        IndexDomain::standard(&[(case.lower, case.lower + case.n as i64 - 1)]).unwrap();
    let a = ds.declare("A", dom).unwrap();
    ds.distribute(a, &DistributeSpec::new(vec![case.fmt.clone()])).unwrap();
    (ds, a)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Totality (Def. 1) + partition: every element has exactly one owner
    /// and owned regions tile the domain.
    #[test]
    fn partition_invariant(case in arb_case()) {
        let (ds, a) = build(&case);
        let mut count = 0usize;
        for p in 1..=case.np as u32 {
            for i in ds.owned_region(a, ProcId(p)).unwrap().iter() {
                prop_assert_eq!(
                    ds.owners(a, &i).unwrap(),
                    ProcSet::One(ProcId(p))
                );
                count += 1;
            }
        }
        prop_assert_eq!(count, case.n);
    }

    /// Local indices are a bijection [1..owned_count] per processor.
    #[test]
    fn local_index_bijective(case in arb_case()) {
        let (ds, a) = build(&case);
        let eff = ds.effective(a).unwrap();
        let dist = eff.as_direct().unwrap();
        let mut per_proc: HashMap<u32, Vec<i64>> = HashMap::new();
        for i in ds.domain(a).unwrap().clone().iter() {
            let p = dist.owner(&i);
            per_proc.entry(p.0).or_default().push(dist.local(&i)[0]);
        }
        for (p, mut locals) in per_proc {
            locals.sort_unstable();
            let want: Vec<i64> = (1..=locals.len() as i64).collect();
            prop_assert_eq!(&locals, &want, "P{} locals not 1..k", p);
        }
    }

    /// owners_of_rect equals brute-force enumeration for strided windows.
    #[test]
    fn owners_of_rect_exact(case in arb_case(), start in 0usize..10, stride in 1i64..5) {
        let (ds, a) = build(&case);
        let eff = ds.effective(a).unwrap();
        let dist = eff.as_direct().unwrap();
        let lo = case.lower + start as i64;
        let hi = case.lower + case.n as i64 - 1;
        if lo > hi { return Ok(()); }
        let r = Rect::new(vec![triplet(lo, hi, stride)]);
        let got: Vec<ProcId> = dist.owners_of_rect(&r).iter().collect();
        let mut want: Vec<ProcId> = r.iter().map(|i| dist.owner(&i)).collect();
        want.sort_unstable();
        want.dedup();
        prop_assert_eq!(got, want);
    }

    /// The §4.1.1 BLOCK formulas, symbolically: owner ⌈i'/q⌉ and local
    /// i' − (j−1)q for arbitrary bounds.
    #[test]
    fn block_closed_form(n in 1usize..200, np in 1usize..17, lower in -50i64..50) {
        let mut ds = DataSpace::new(np);
        let dom = IndexDomain::standard(&[(lower, lower + n as i64 - 1)]).unwrap();
        let a = ds.declare("A", dom).unwrap();
        ds.distribute(a, &DistributeSpec::new(vec![FormatSpec::Block])).unwrap();
        let eff = ds.effective(a).unwrap();
        let dist = eff.as_direct().unwrap();
        let q = (n as i64 + np as i64 - 1) / np as i64;
        for v in lower..lower + n as i64 {
            let ip = v - lower + 1;
            let j = (ip + q - 1) / q;
            prop_assert_eq!(dist.owner(&Idx::d1(v)), ProcId(j as u32));
            prop_assert_eq!(dist.local(&Idx::d1(v))[0], ip - (j - 1) * q);
        }
    }

    /// CYCLIC(k) closed form: δ(i') = ((⌈i'/k⌉ − 1) mod NP) + 1.
    #[test]
    fn cyclic_closed_form(n in 1usize..200, np in 1usize..9, k in 1i64..7, lower in -20i64..20) {
        let mut ds = DataSpace::new(np);
        let dom = IndexDomain::standard(&[(lower, lower + n as i64 - 1)]).unwrap();
        let a = ds.declare("A", dom).unwrap();
        ds.distribute(a, &DistributeSpec::new(vec![FormatSpec::Cyclic(k as u64)])).unwrap();
        let eff = ds.effective(a).unwrap();
        let dist = eff.as_direct().unwrap();
        for v in lower..lower + n as i64 {
            let ip = v - lower + 1;
            let seg = (ip + k - 1) / k;
            let j = ((seg - 1).rem_euclid(np as i64)) + 1;
            prop_assert_eq!(dist.owner(&Idx::d1(v)), ProcId(j as u32));
        }
    }

    /// 2-D distributions factor per dimension: the owner of (i, j) under
    /// (f1, f2) on an (r × c) grid is determined by the per-axis coords.
    #[test]
    fn two_dim_factorization(
        n1 in 2usize..20, n2 in 2usize..20,
        rows in 1usize..4, cols in 1usize..4,
        k1 in 1u64..4, k2 in 1u64..4)
    {
        let np = rows * cols;
        let mut ds = DataSpace::new(np);
        ds.declare_processors("G", IndexDomain::of_shape(&[rows, cols]).unwrap()).unwrap();
        let a = ds.declare("A", IndexDomain::of_shape(&[n1, n2]).unwrap()).unwrap();
        ds.distribute(
            a,
            &DistributeSpec::to(vec![FormatSpec::Cyclic(k1), FormatSpec::Cyclic(k2)], "G"),
        ).unwrap();
        let eff = ds.effective(a).unwrap();
        let dist = eff.as_direct().unwrap();
        for i in 1..=n1 as i64 {
            for j in 1..=n2 as i64 {
                let c = dist.coords(&Idx::d2(i, j));
                // column-major grid: AP = c1 + (c2 − 1) × rows
                let want = c[0] + (c[1] - 1) * rows as i64;
                prop_assert_eq!(dist.owner(&Idx::d2(i, j)), ProcId(want as u32));
            }
        }
    }
}
