//! Program-level plan fusion: superstep DAG construction, cross-statement
//! message coalescing, and ghost-region reuse for warm replay.
//!
//! Per-statement plans ([`ExecPlan`]) treat every statement as its own
//! island: an iterated solver re-exchanges its full ghost sets every
//! timestep even when the overlap data has not changed, and back-to-back
//! statements reading the same operand pack the same bytes twice. This
//! module lifts the inspector–executor boundary from *statement* to
//! *program*:
//!
//! 1. **Superstep DAG** — the timestep's statements are level-scheduled at
//!    array granularity: statement `s` must run after an earlier statement
//!    `r` iff `s` reads `r`'s LHS array (RAW) or writes the same array
//!    (WAW). WAR is *not* a conflict: the pack phase snapshots every
//!    operand before any same-superstep store (Fortran 90 array-assignment
//!    semantics), so an earlier reader and a later writer fuse safely into
//!    one superstep.
//! 2. **Message coalescing** — within a superstep, every constituent
//!    plan's [`PairSchedule`](crate::PairSchedule)s for the same
//!    `(sender, receiver)` pair merge into one [`FusedPair`]: one
//!    vectorized message per pair per superstep instead of one per pair
//!    per statement.
//! 3. **Ghost-region reuse** — each coalesced segment is a dirty-tracking
//!    *unit*. At compile time the fused plan computes, from store-run /
//!    source-interval intersections, which statements overwrite each
//!    unit's source data; at run time a [`FusedState`] combines that with
//!    per-shard write epochs (see `DistArray::shard_version`) to skip
//!    re-sending units whose receiver-side copy is still current. The
//!    receiving buffers persist across timesteps, so a skipped unit's data
//!    is simply still there.
//! 4. **Pack/compute overlap** — a fused pair's message is packed and
//!    shipped at its `pack_phase`, the earliest superstep at which its
//!    source data is final. A pair whose operands no earlier superstep
//!    writes is hoisted to phase 0, so its exchange overlaps the compute
//!    of every earlier superstep (the `Channels` workers run phases
//!    without global barriers; they block only on the arrivals the next
//!    kernel actually reads).
//!
//! A [`ProgramPlan`] is immutable once compiled; `PlanCache` keeps one per
//! statement sequence and invalidates it exactly like the per-statement
//! plans — structural statement equality plus `MappingId` identity of
//! every involved mapping (so `Program::remap` invalidates it).

use crate::array::DistArray;
use crate::assign::Assignment;
use crate::backend::pack_local_runs;
use crate::plan::{compute_proc, ExecPlan};
use crate::workspace::FusedWorkspace;
use std::sync::Arc;

/// One contiguous piece of a coalesced message, tied back to the
/// statement it feeds: `len` elements from shard `sender` of array
/// `array` at `src_off`, landing in statement `stmt`'s packed operand
/// buffer for term `term` at `dst_off` on the receiver. Also the
/// granularity of ghost dirty tracking (`unit` indexes the plan's
/// [`UnitMeta`] table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusedSegment {
    /// Index of the statement (and constituent plan) this segment feeds.
    pub stmt: usize,
    /// RHS term index within that statement.
    pub term: usize,
    /// Operand array index (selects the sender's local buffer).
    pub array: usize,
    /// Flat offset into the sender's local shard.
    pub src_off: usize,
    /// Position in the receiver's packed operand buffer for `term`.
    pub dst_off: usize,
    /// Elements moved.
    pub len: usize,
    /// Index into [`ProgramPlan::units`] — the segment's dirty-tracking
    /// unit (1:1 with segments).
    pub unit: usize,
}

/// Everything one ordered processor pair exchanges for one superstep,
/// coalesced across every statement of that superstep: the fused
/// analogue of [`PairSchedule`](crate::PairSchedule).
#[derive(Debug, Clone)]
pub struct FusedPair {
    /// Zero-based sending processor.
    pub sender: u32,
    /// Zero-based receiving processor.
    pub receiver: u32,
    /// The superstep whose kernels read this message (its *home*).
    pub superstep: usize,
    /// The phase at which the message is packed and shipped: the earliest
    /// superstep index at which no earlier-superstep statement can still
    /// write the source data. `pack_phase ≤ superstep`; a strict
    /// inequality is the pack/compute overlap window.
    pub pack_phase: usize,
    /// Total elements when every segment is sent (= sum of segment
    /// lengths). The actual wire traffic of a warm timestep is the sum
    /// over *effective* (dirty) segments only.
    pub elements: usize,
    /// The message layout, in pack order.
    pub segments: Vec<FusedSegment>,
}

/// Compile-time dirty-tracking metadata for one coalesced segment: where
/// its source data lives and which program statements overwrite it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnitMeta {
    /// Source array index.
    pub array: usize,
    /// Zero-based source shard (the sending processor).
    pub shard: usize,
    /// Flat source interval start within the shard.
    pub src_off: usize,
    /// Source interval length in elements.
    pub len: usize,
    /// Home superstep of the pair the unit belongs to.
    pub superstep: usize,
    /// True iff some statement in a superstep *before* the unit's pack
    /// phase writes its source interval: the unit must then be re-sent
    /// every timestep regardless of its cross-timestep dirty bit, because
    /// the current timestep changes the data before it is staged.
    pub intra_dirty: bool,
    /// True iff some statement at or after the unit's home superstep
    /// writes its source interval: the receiver's copy is stale *after*
    /// the timestep, so the unit re-enters the next timestep dirty.
    pub post_dirty: bool,
}

/// One level of the fused timestep: the statements (by index) that
/// execute together, pairwise free of RAW/WAW conflicts.
#[derive(Debug, Clone)]
pub struct Superstep {
    /// Statement indices, in program order.
    pub stmts: Vec<usize>,
}

/// A whole timestep compiled as one fused schedule: the constituent
/// per-statement plans, the superstep DAG flattened to levels, the
/// coalesced per-pair messages, and the dirty-tracking unit table.
/// Immutable once compiled; see the module docs for invalidation rules.
#[derive(Debug, Clone)]
pub struct ProgramPlan {
    plans: Vec<Arc<ExecPlan>>,
    supersteps: Vec<Superstep>,
    pairs: Vec<FusedPair>,
    units: Vec<UnitMeta>,
    messages_before: usize,
    messages_after: usize,
}

/// Merge possibly-overlapping `(start, end)` intervals into a sorted
/// disjoint list.
pub(crate) fn merge_intervals(mut iv: Vec<(usize, usize)>) -> Vec<(usize, usize)> {
    iv.sort_unstable();
    let mut out: Vec<(usize, usize)> = Vec::with_capacity(iv.len());
    for (a, b) in iv {
        match out.last_mut() {
            Some(last) if a <= last.1 => last.1 = last.1.max(b),
            _ => out.push((a, b)),
        }
    }
    out
}

/// Does any interval of the sorted disjoint list intersect `[start, end)`?
pub(crate) fn intersects(iv: &[(usize, usize)], start: usize, end: usize) -> bool {
    let i = iv.partition_point(|&(_, e)| e <= start);
    i < iv.len() && iv[i].0 < end
}

impl ProgramPlan {
    /// Compile the fused schedule for one timestep: level-schedule the
    /// statements, coalesce their message plans per superstep, and derive
    /// the static dirty/phase metadata from store-run intersections.
    ///
    /// `plans[s]` must be the compiled plan of `stmts[s]` against the
    /// current mappings (the `PlanCache` resolves them; direct callers can
    /// use [`ExecPlan::inspect`]).
    ///
    /// # Panics
    /// Panics if `stmts` and `plans` disagree in length.
    pub fn compile(stmts: &[Assignment], plans: Vec<Arc<ExecPlan>>) -> ProgramPlan {
        assert_eq!(stmts.len(), plans.len(), "one plan per statement");
        let n = stmts.len();

        // 1. greedy level scheduling at array granularity: s conflicts
        // with an earlier r iff s reads r's LHS (RAW) or writes the same
        // array (WAW). WAR fuses (pack snapshots operands before stores).
        let mut level = vec![0usize; n];
        for s in 0..n {
            let mut lv = 0usize;
            for r in 0..s {
                let raw = stmts[s].terms.iter().any(|t| t.array == stmts[r].lhs);
                let waw = stmts[s].lhs == stmts[r].lhs;
                if raw || waw {
                    lv = lv.max(level[r] + 1);
                }
            }
            level[s] = lv;
        }
        let depth = level.iter().map(|l| l + 1).max().unwrap_or(0);
        let mut supersteps: Vec<Superstep> =
            (0..depth).map(|_| Superstep { stmts: Vec::new() }).collect();
        for (s, &lv) in level.iter().enumerate() {
            supersteps[lv].stmts.push(s);
        }

        // 2. per-statement store intervals in flat shard-offset space:
        // writes[s][q] = what statement s stores into shard q of its LHS.
        let np = plans.iter().map(|p| p.per_proc().len()).max().unwrap_or(0);
        let writes: Vec<Vec<Vec<(usize, usize)>>> = plans
            .iter()
            .map(|p| {
                let mut per: Vec<Vec<(usize, usize)>> = vec![Vec::new(); np];
                for pp in p.per_proc() {
                    per[pp.proc.zero_based()] = merge_intervals(
                        pp.lhs_runs.iter().map(|r| (r.dst_off, r.dst_off + r.len)).collect(),
                    );
                }
                per
            })
            .collect();

        // 3. coalesce messages: all constituent segments of one
        // superstep's statements sharing a (sender, receiver) pair merge
        // into one fused message, in (superstep, sender, receiver) order.
        // Each constituent segment is split at the boundaries of the
        // statically-known store intervals on its source shard, so a
        // never-written stretch (e.g. a fixed boundary element a stencil
        // reads but no sweep updates) gets its own dirty-tracking unit —
        // ghost validity is decided per homogeneous stretch, not per
        // whole gather run.
        let mut messages_before = 0usize;
        let mut map: std::collections::BTreeMap<(usize, u32, u32), Vec<FusedSegment>> =
            std::collections::BTreeMap::new();
        let mut cuts: Vec<usize> = Vec::new();
        for (s, plan) in plans.iter().enumerate() {
            let msgs = plan.message_plan();
            messages_before += msgs.pairs().len();
            for pair in msgs.pairs() {
                let bucket = map.entry((level[s], pair.sender, pair.receiver)).or_default();
                for seg in &pair.segments {
                    let (start, end) = (seg.src_off, seg.src_off + seg.len);
                    cuts.clear();
                    cuts.push(start);
                    for (w, stmt) in stmts.iter().enumerate() {
                        if stmt.lhs != seg.array {
                            continue;
                        }
                        for &(ws, we) in &writes[w][pair.sender as usize] {
                            for c in [ws, we] {
                                if c > start && c < end {
                                    cuts.push(c);
                                }
                            }
                        }
                    }
                    cuts.push(end);
                    cuts.sort_unstable();
                    cuts.dedup();
                    for w in cuts.windows(2) {
                        bucket.push(FusedSegment {
                            stmt: s,
                            term: seg.term,
                            array: seg.array,
                            src_off: w[0],
                            dst_off: seg.dst_off + (w[0] - start),
                            len: w[1] - w[0],
                            unit: 0, // assigned below
                        });
                    }
                }
            }
        }

        // 4. units, dirty flags, and pack phases. A unit's writers split
        // by superstep relative to the pair's home: writers strictly
        // before the home push the pack phase past them (and force a
        // same-timestep re-send); writers at or after the home happen
        // after staging, so they leave the receiver's copy stale for the
        // *next* timestep.
        let mut pairs = Vec::with_capacity(map.len());
        let mut units = Vec::new();
        for ((superstep, sender, receiver), mut segments) in map {
            let mut pack_phase = 0usize;
            for seg in &mut segments {
                seg.unit = units.len();
                let (mut intra, mut post) = (false, false);
                for (w, stmt) in stmts.iter().enumerate() {
                    if stmt.lhs != seg.array
                        || !intersects(
                            &writes[w][sender as usize],
                            seg.src_off,
                            seg.src_off + seg.len,
                        )
                    {
                        continue;
                    }
                    if level[w] < superstep {
                        intra = true;
                        pack_phase = pack_phase.max(level[w] + 1);
                    } else {
                        post = true;
                    }
                }
                units.push(UnitMeta {
                    array: seg.array,
                    shard: sender as usize,
                    src_off: seg.src_off,
                    len: seg.len,
                    superstep,
                    intra_dirty: intra,
                    post_dirty: post,
                });
            }
            let elements = segments.iter().map(|s| s.len).sum();
            pairs.push(FusedPair { sender, receiver, superstep, pack_phase, elements, segments });
        }
        let messages_after = pairs.len();

        ProgramPlan { plans, supersteps, pairs, units, messages_before, messages_after }
    }

    /// The constituent per-statement plans, in program order.
    pub fn plans(&self) -> &[Arc<ExecPlan>] {
        &self.plans
    }

    /// The superstep levels, each pairwise free of RAW/WAW conflicts.
    pub fn supersteps(&self) -> &[Superstep] {
        &self.supersteps
    }

    /// The coalesced messages, sorted by `(superstep, sender, receiver)`.
    pub fn pairs(&self) -> &[FusedPair] {
        &self.pairs
    }

    /// The dirty-tracking unit table (1:1 with coalesced segments).
    pub fn units(&self) -> &[UnitMeta] {
        &self.units
    }

    /// Constituent `(sender, receiver)` messages before coalescing (one
    /// per pair per statement).
    pub fn messages_before(&self) -> usize {
        self.messages_before
    }

    /// Coalesced messages after fusion (one per pair per superstep).
    pub fn messages_after(&self) -> usize {
        self.messages_after
    }

    /// Simulated processor count the fused schedule drives.
    pub fn np(&self) -> usize {
        self.plans.iter().map(|p| p.per_proc().len()).max().unwrap_or(0)
    }

    /// True iff every constituent plan is still valid for `arrays` (same
    /// `MappingId` for every involved mapping — see
    /// [`ExecPlan::is_valid_for`]).
    pub fn is_valid_for(&self, arrays: &[DistArray<f64>]) -> bool {
        self.plans.iter().all(|p| p.is_valid_for(arrays))
    }

    /// Elements pair `k` actually ships under the effective-send mask
    /// `eff` (indexed by unit).
    pub(crate) fn pair_eff_elements(&self, k: usize, eff: &[bool]) -> usize {
        self.pairs[k].segments.iter().filter(|s| eff[s.unit]).map(|s| s.len).sum()
    }

    /// Mutable access to the coalesced pairs.
    ///
    /// Only for mutation tests that corrupt a frozen fused schedule to
    /// prove [`verify_program_plan`](crate::verify::verify_program_plan)
    /// catches it — never mutate a plan that will execute.
    #[doc(hidden)]
    pub fn pairs_mut(&mut self) -> &mut Vec<FusedPair> {
        &mut self.pairs
    }
}

/// Which executor family currently owns the receiver-side packed operand
/// buffers that clean-unit skipping relies on. The workspace executors
/// (shared-mem and the scoped-thread parallel path) share one
/// [`FusedWorkspace`]; the `Channels` workers keep their own buffers, and
/// a respawned fleet starts empty — the generation stamp detects that.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BufferDomain {
    /// No fused timestep has run yet.
    None,
    /// The `FusedWorkspace` buffers (shared-mem / scoped-thread paths).
    Workspace,
    /// The `Channels` worker fleet with the given spawn generation.
    Channels(u64),
}

/// Mutable per-`ProgramPlan` replay state: the cross-timestep dirty bits,
/// the per-timestep effective-send mask, per-shard write-epoch snapshots
/// for out-of-band-write detection, and the reuse counters behind
/// [`FusionStats`](crate::FusionStats). Warm timesteps mutate it without
/// allocating.
#[derive(Debug, Clone)]
pub struct FusedState {
    dirty: Vec<bool>,
    /// Effective-send mask of the current timestep; `Arc` so the
    /// `Channels` driver can ship it to the workers without copying.
    eff: Arc<Vec<bool>>,
    /// Effective elements per coalesced pair under the current mask —
    /// the executors' O(1) whole-pair skip (a cyclic gather degrades to
    /// per-element segments, so anything per-segment is the hot path).
    pair_eff: Vec<u64>,
    /// Bumped whenever the mask is rebuilt, so `Channels` workers can
    /// cache their per-pair filter results across steady warm timesteps.
    eff_version: u64,
    /// True while `eff`/`pair_eff` match `dirty` — steady warm timesteps
    /// skip every per-unit pass.
    eff_current: bool,
    /// True while `dirty` equals the static `post_dirty` column, which is
    /// the steady-state fixpoint `finish_timestep` drives it to.
    dirty_is_post: bool,
    /// Per-pair `(start, end)` ranges into `eff_segs`.
    eff_ranges: Vec<(u32, u32)>,
    /// Flat per-pair lists of effective segment indices (into each
    /// [`FusedPair::segments`]), so the staging loops touch only the
    /// segments that actually ship instead of filtering the full
    /// coalesced list every timestep. Capacity is reserved up front so
    /// mask rebuilds never allocate.
    eff_segs: Vec<u32>,
    /// `snaps[a][q]` = shard version of array `a`, shard `q` at the end
    /// of the last fused timestep.
    snaps: Vec<Vec<u64>>,
    domain: BufferDomain,
    last_sent: u64,
    last_avoided: u64,
    sent_elements: u64,
    avoided_elements: u64,
    timesteps: u64,
}

impl FusedState {
    /// Fresh state for `plan`: everything dirty, so the first timestep
    /// ships the full schedule and populates the receiver-side buffers.
    pub(crate) fn new(plan: &ProgramPlan, arrays: &[DistArray<f64>]) -> FusedState {
        let nseg = plan.pairs.iter().map(|p| p.segments.len()).sum();
        FusedState {
            dirty: vec![true; plan.units.len()],
            eff: Arc::new(vec![false; plan.units.len()]),
            pair_eff: vec![0; plan.pairs.len()],
            eff_version: 0,
            eff_current: false,
            dirty_is_post: false,
            eff_ranges: vec![(0, 0); plan.pairs.len()],
            eff_segs: Vec::with_capacity(nseg),
            snaps: arrays.iter().map(|a| vec![0u64; a.np()]).collect(),
            domain: BufferDomain::None,
            last_sent: 0,
            last_avoided: 0,
            sent_elements: 0,
            avoided_elements: 0,
            timesteps: 0,
        }
    }

    /// Open a timestep: dirty everything if the buffer domain changed
    /// (different executor family or respawned worker fleet), fold in
    /// out-of-band shard writes detected via the write epochs, and build
    /// the effective-send mask (`dirty ∨ intra_dirty`).
    ///
    /// The expensive passes here are all O(units), and a cyclic gather
    /// degrades to per-element units — so the steady warm state must not
    /// touch them. The out-of-band probe is O(arrays × shards); when it
    /// is quiet, the domain is unchanged, and the mask already matches
    /// the dirty bits, the previous timestep's mask, per-pair totals and
    /// segment lists are all still exact and the call returns
    /// immediately.
    pub(crate) fn begin_timestep(
        &mut self,
        plan: &ProgramPlan,
        arrays: &[DistArray<f64>],
        domain: BufferDomain,
    ) {
        let mut event = self.domain != domain;
        if event {
            self.dirty.iter_mut().for_each(|d| *d = true);
            self.domain = domain;
            self.dirty_is_post = false;
        }
        let quiet = self.snaps.iter().zip(arrays).all(|(snap, arr)| {
            snap.iter().enumerate().all(|(q, &s)| arr.shard_version(q) == s)
        });
        if !quiet {
            for (d, meta) in self.dirty.iter_mut().zip(&plan.units) {
                if arrays[meta.array].shard_version(meta.shard)
                    != self.snaps[meta.array][meta.shard]
                {
                    *d = true;
                }
            }
            self.dirty_is_post = false;
            event = true;
        }
        if !event && self.eff_current {
            return; // steady state: mask, counters and segment lists hold
        }
        let eff = Arc::make_mut(&mut self.eff);
        let (mut sent, mut avoided) = (0u64, 0u64);
        for ((e, &d), meta) in eff.iter_mut().zip(&self.dirty).zip(&plan.units) {
            *e = d || meta.intra_dirty;
            if *e {
                sent += meta.len as u64;
            } else {
                avoided += meta.len as u64;
            }
        }
        self.last_sent = sent;
        self.last_avoided = avoided;
        self.eff_segs.clear();
        let mut start = 0u32;
        for ((range, elems), pair) in
            self.eff_ranges.iter_mut().zip(self.pair_eff.iter_mut()).zip(&plan.pairs)
        {
            let mut n = 0u64;
            for (i, seg) in pair.segments.iter().enumerate() {
                if eff[seg.unit] {
                    self.eff_segs.push(i as u32);
                    n += seg.len as u64;
                }
            }
            let end = self.eff_segs.len() as u32;
            *range = (start, end);
            *elems = n;
            start = end;
        }
        self.eff_version = self.eff_version.wrapping_add(1);
        self.eff_current = true;
    }

    /// The effective segment indices of pair `k` under the current mask.
    pub(crate) fn eff_segments(&self, k: usize) -> &[u32] {
        let (lo, hi) = self.eff_ranges[k];
        &self.eff_segs[lo as usize..hi as usize]
    }

    /// Monotone stamp of the current mask, bumped on every rebuild — lets
    /// the `Channels` workers cache their per-pair filter results across
    /// steady warm timesteps.
    pub(crate) fn eff_version(&self) -> u64 {
        self.eff_version
    }

    /// The mask as a shareable handle (for the `Channels` driver).
    pub(crate) fn eff_arc(&self) -> Arc<Vec<bool>> {
        self.eff.clone()
    }

    /// Elements the current timestep's mask ships.
    pub(crate) fn last_sent(&self) -> u64 {
        self.last_sent
    }

    /// Close a timestep: a unit re-enters dirty iff some statement at or
    /// after its pack point overwrote its source this timestep (the
    /// static `post_dirty` — sound because units the mask skipped had no
    /// writers at all, and units it shipped were staged past every
    /// earlier writer). Then resync the write-epoch snapshots.
    pub(crate) fn finish_timestep(&mut self, plan: &ProgramPlan, arrays: &[DistArray<f64>]) {
        if !self.dirty_is_post {
            let mut changed = false;
            for (d, meta) in self.dirty.iter_mut().zip(&plan.units) {
                if *d != meta.post_dirty {
                    *d = meta.post_dirty;
                    changed = true;
                }
            }
            self.dirty_is_post = true;
            if changed {
                self.eff_current = false;
            }
        }
        for (snap, arr) in self.snaps.iter_mut().zip(arrays) {
            for (q, s) in snap.iter_mut().enumerate() {
                *s = arr.shard_version(q);
            }
        }
        self.sent_elements += self.last_sent;
        self.avoided_elements += self.last_avoided;
        self.timesteps += 1;
    }

    /// Cumulative ghost elements shipped across fused timesteps.
    pub(crate) fn sent_elements(&self) -> u64 {
        self.sent_elements
    }

    /// Cumulative ghost elements skipped as clean across fused timesteps.
    pub(crate) fn avoided_elements(&self) -> u64 {
        self.avoided_elements
    }

    /// Fused timesteps executed through this state.
    pub(crate) fn timesteps(&self) -> u64 {
        self.timesteps
    }

    /// Distrust everything after a failed timestep: an exchange fault
    /// left the arrays partial (and, on `Channels`, the fleet torn down
    /// with its receiver-side ghost buffers), so every unit must re-ship
    /// on the next attempt. Setting the domain to `None` also forces
    /// `begin_timestep`'s domain-change path, which re-dirties and
    /// rebuilds the mask no matter which executor retries — checkpoint
    /// restore then replays through a state with no stale assumptions.
    pub(crate) fn poison(&mut self) {
        self.dirty.iter_mut().for_each(|d| *d = true);
        self.dirty_is_post = false;
        self.eff_current = false;
        self.domain = BufferDomain::None;
    }

    /// Carry the cumulative observability counters over from the state
    /// of an invalidated plan, so `fusion_stats` stays lifetime-cumulative
    /// across remaps and statement-list changes.
    pub(crate) fn carry_counters(&mut self, old: &FusedState) {
        self.sent_elements = old.sent_elements;
        self.avoided_elements = old.avoided_elements;
        self.timesteps = old.timesteps;
    }
}

/// Observability snapshot of the fused program path — what
/// [`Program::fusion_stats`](crate::Program::fusion_stats) returns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusionStats {
    /// Statements in the fused plan.
    pub statements: usize,
    /// Superstep levels the DAG flattened to.
    pub supersteps: usize,
    /// Constituent per-statement messages before coalescing.
    pub messages_before: usize,
    /// Coalesced messages after fusion.
    pub messages_after: usize,
    /// Timesteps replayed through the fused plan.
    pub fused_timesteps: u64,
    /// Ghost elements actually shipped across those timesteps.
    pub ghost_elements_sent: u64,
    /// Ghost elements skipped because their receiver-side copy was still
    /// current (never re-packed, never re-sent).
    pub ghost_elements_avoided: u64,
}

impl FusionStats {
    /// Ghost bytes actually shipped.
    pub fn ghost_bytes_sent(&self) -> u64 {
        self.ghost_elements_sent * std::mem::size_of::<f64>() as u64
    }

    /// Ghost bytes avoided by clean-unit reuse.
    pub fn ghost_bytes_avoided(&self) -> u64 {
        self.ghost_elements_avoided * std::mem::size_of::<f64>() as u64
    }
}

impl std::fmt::Display for FusionStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} statements in {} supersteps, {} messages coalesced to {}, \
             {} timesteps: {} ghost bytes sent, {} avoided by reuse",
            self.statements,
            self.supersteps,
            self.messages_before,
            self.messages_after,
            self.fused_timesteps,
            self.ghost_bytes_sent(),
            self.ghost_bytes_avoided(),
        )
    }
}

/// Stage the effective segments of every fused pair hoisted to `phase`
/// into its staging buffer and deliver them into the per-statement packed
/// operand buffers — the workspace executors' exchange leg. Returns the
/// elements staged.
fn stage_phase(
    plan: &ProgramPlan,
    arrays: &[DistArray<f64>],
    state: &FusedState,
    ws: &mut FusedWorkspace,
    phase: usize,
) -> u64 {
    let mut staged_total = 0u64;
    for (k, pair) in plan.pairs.iter().enumerate() {
        if pair.pack_phase != phase || state.pair_eff[k] == 0 {
            continue;
        }
        let segs = state.eff_segments(k);
        let stage = &mut ws.stage[k];
        let mut off = 0usize;
        for &i in segs {
            let seg = &pair.segments[i as usize];
            let src =
                &arrays[seg.array].local(pair.sender as usize)[seg.src_off..seg.src_off + seg.len];
            stage[off..off + seg.len].copy_from_slice(src);
            off += seg.len;
        }
        staged_total += off as u64;
        let mut off = 0usize;
        for &i in segs {
            let seg = &pair.segments[i as usize];
            ws.per_stmt[seg.stmt].bufs[pair.receiver as usize][seg.term]
                [seg.dst_off..seg.dst_off + seg.len]
                .copy_from_slice(&stage[off..off + seg.len]);
            off += seg.len;
        }
    }
    staged_total
}

/// Sequential fused timestep over one address space: per phase, pack the
/// superstep's local runs, stage the effective segments of every pair
/// hoisted to the phase, then compute the superstep's statements. Returns
/// the elements staged (the timestep's wire traffic). Warm calls perform
/// zero heap allocations.
pub(crate) fn execute_fused_seq(
    plan: &ProgramPlan,
    arrays: &mut [DistArray<f64>],
    state: &FusedState,
    ws: &mut FusedWorkspace,
) -> u64 {
    assert!(plan.is_valid_for(arrays), "stale fused plan: an involved array was remapped");
    ws.ensure(plan);
    ws.rank_ns.fill(0);
    let mut staged_total = 0u64;
    for phase in 0..plan.supersteps.len() {
        for &s in &plan.supersteps[phase].stmts {
            let sp = &plan.plans[s];
            for (pp, bufs) in sp.per_proc().iter().zip(ws.per_stmt[s].bufs.iter_mut()) {
                pack_local_runs(arrays, pp, bufs);
            }
        }
        staged_total += stage_phase(plan, arrays, state, ws, phase);
        for &s in &plan.supersteps[phase].stmts {
            let sp = &plan.plans[s];
            let combine = sp.combine();
            let (_, locals) = arrays[sp.lhs()].parts_mut();
            for (pp, bufs) in sp.per_proc().iter().zip(&ws.per_stmt[s].bufs) {
                // per-rank compute-time sample: what the simulated
                // processor would spend on its kernels, measured — the
                // adaptive controller's observed load vector
                let t0 = std::time::Instant::now();
                compute_proc(pp, &mut locals[pp.proc.zero_based()], bufs, combine);
                ws.rank_ns[pp.proc.zero_based()] += t0.elapsed().as_nanos() as u64;
            }
        }
    }
    staged_total
}

/// Scoped-thread fused timestep honoring a thread cap below the simulated
/// processor count: each statement's pack and compute phases spread over
/// `threads` scoped threads (chunked by processor, like
/// [`ExecPlan::execute_par_with`]); staging stays serial — it is exactly
/// the leg clean-unit skipping shrinks. Returns the elements staged.
pub(crate) fn execute_fused_par(
    plan: &ProgramPlan,
    arrays: &mut [DistArray<f64>],
    state: &FusedState,
    ws: &mut FusedWorkspace,
    threads: usize,
) -> u64 {
    assert!(plan.is_valid_for(arrays), "stale fused plan: an involved array was remapped");
    ws.ensure(plan);
    let np = plan.np();
    let threads = threads.clamp(1, np.max(1));
    if threads == 1 {
        return execute_fused_seq(plan, arrays, state, ws);
    }
    let chunk = np.div_ceil(threads);
    let mut staged_total = 0u64;
    for phase in 0..plan.supersteps.len() {
        for &s in &plan.supersteps[phase].stmts {
            let sp = &plan.plans[s];
            let per_proc = sp.per_proc();
            let arrays_ref: &[DistArray<f64>] = arrays;
            crossbeam::thread::scope(|scope| {
                for (pps, bufss) in
                    per_proc.chunks(chunk).zip(ws.per_stmt[s].bufs.chunks_mut(chunk))
                {
                    scope.spawn(move |_| {
                        for (pp, bufs) in pps.iter().zip(bufss) {
                            pack_local_runs(arrays_ref, pp, bufs);
                        }
                    });
                }
            })
            .expect("worker thread panicked");
        }
        staged_total += stage_phase(plan, arrays, state, ws, phase);
        for &s in &plan.supersteps[phase].stmts {
            let sp = &plan.plans[s];
            let combine = sp.combine();
            let per_proc = sp.per_proc();
            let bufs_all = &ws.per_stmt[s].bufs;
            let (_, locals) = arrays[sp.lhs()].parts_mut();
            crossbeam::thread::scope(|scope| {
                for ((pps, bufss), locs) in per_proc
                    .chunks(chunk)
                    .zip(bufs_all.chunks(chunk))
                    .zip(locals.chunks_mut(chunk))
                {
                    scope.spawn(move |_| {
                        for ((pp, bufs), local) in pps.iter().zip(bufss).zip(locs) {
                            compute_proc(pp, local, bufs, combine);
                        }
                    });
                }
            })
            .expect("worker thread panicked");
        }
    }
    staged_total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::{Combine, Term};
    use hpf_core::{DataSpace, DistributeSpec, FormatSpec};
    use hpf_index::{span, triplet, IndexDomain, Section};

    fn arrays_1d(n: usize, np: usize, fmts: &[FormatSpec]) -> Vec<DistArray<f64>> {
        let mut ds = DataSpace::new(np);
        let mut out = Vec::new();
        for (k, f) in fmts.iter().enumerate() {
            let name = format!("A{k}");
            let id = ds.declare(&name, IndexDomain::of_shape(&[n]).unwrap()).unwrap();
            ds.distribute(id, &DistributeSpec::new(vec![f.clone()])).unwrap();
            out.push(DistArray::from_fn(&name, ds.effective(id).unwrap(), np, |i| {
                (i[0] * (k as i64 + 2)) as f64
            }));
        }
        out
    }

    fn compile(arrays: &[DistArray<f64>], stmts: &[Assignment]) -> ProgramPlan {
        let plans = stmts
            .iter()
            .map(|s| Arc::new(ExecPlan::inspect(arrays, s).unwrap()))
            .collect();
        ProgramPlan::compile(stmts, plans)
    }

    #[test]
    fn independent_statements_fuse_into_one_superstep() {
        let n = 32i64;
        let arrays =
            arrays_1d(32, 4, &[FormatSpec::Block, FormatSpec::Block, FormatSpec::Cyclic(1)]);
        let doms: Vec<&IndexDomain> = arrays.iter().map(|a| a.domain()).collect();
        // A0 and A1 both read the cyclic A2: independent at array level
        let mk = |lhs: usize| {
            Assignment::new(
                lhs,
                Section::from_triplets(vec![span(1, n)]),
                vec![Term::new(2, Section::from_triplets(vec![span(1, n)]))],
                Combine::Copy,
                &doms,
            )
            .unwrap()
        };
        let stmts = vec![mk(0), mk(1)];
        let plan = compile(&arrays, &stmts);
        assert_eq!(plan.supersteps().len(), 1);
        assert_eq!(plan.supersteps()[0].stmts, vec![0, 1]);
        // both statements' pairs coalesce: strictly fewer fused messages
        assert!(plan.messages_after() < plan.messages_before());
        // A2 is never written → every unit is clean in steady state
        assert!(plan.units().iter().all(|u| !u.intra_dirty && !u.post_dirty));
        assert!(plan.pairs().iter().all(|p| p.pack_phase == 0));
    }

    #[test]
    fn raw_dependence_forces_a_later_superstep() {
        let n = 32i64;
        let arrays = arrays_1d(32, 4, &[FormatSpec::Block, FormatSpec::Block]);
        let doms: Vec<&IndexDomain> = arrays.iter().map(|a| a.domain()).collect();
        let s0 = Assignment::new(
            0,
            Section::from_triplets(vec![span(2, n)]),
            vec![Term::new(1, Section::from_triplets(vec![span(1, n - 1)]))],
            Combine::Copy,
            &doms,
        )
        .unwrap();
        // reads A0, which s0 writes → RAW → superstep 1
        let s1 = Assignment::new(
            1,
            Section::from_triplets(vec![span(2, n)]),
            vec![Term::new(0, Section::from_triplets(vec![span(1, n - 1)]))],
            Combine::Copy,
            &doms,
        )
        .unwrap();
        let plan = compile(&arrays, &[s0, s1]);
        assert_eq!(plan.supersteps().len(), 2);
        assert_eq!(plan.supersteps()[0].stmts, vec![0]);
        assert_eq!(plan.supersteps()[1].stmts, vec![1]);
        // s1's ghost units read A0 data that s0 rewrites *earlier in the
        // same timestep*: the pack phase is hoisted past the write and the
        // unit re-sends every timestep (intra). The write precedes the
        // pack, so the staged copy is current at timestep end — no
        // post-dirty carryover is needed on top.
        for pair in plan.pairs().iter().filter(|p| p.superstep == 1) {
            assert_eq!(pair.pack_phase, 1, "{} → {}", pair.sender, pair.receiver);
        }
        for u in plan.units().iter().filter(|u| u.superstep == 1) {
            assert!(u.intra_dirty, "rewritten before its pack phase → intra");
            assert!(!u.post_dirty, "packed after the write → current at timestep end");
        }
    }

    #[test]
    fn red_black_boundary_units_stay_clean() {
        // the red/black sweeps under CYCLIC(1): interior ghosts are
        // rewritten by the opposite sweep every timestep, but the
        // boundary elements U(0) and U(n+1) are never written — their
        // units must be statically clean (post_dirty = false)
        let n = 31i64;
        let np = 4usize;
        let mut ds = DataSpace::new(np);
        let u = ds.declare("U", IndexDomain::standard(&[(0, n + 1)]).unwrap()).unwrap();
        ds.distribute(u, &DistributeSpec::new(vec![FormatSpec::Cyclic(1)])).unwrap();
        let arrays =
            vec![DistArray::from_fn("U", ds.effective(u).unwrap(), np, |i| i[0] as f64)];
        let doms: Vec<&IndexDomain> = arrays.iter().map(|a| a.domain()).collect();
        let red = Assignment::new(
            0,
            Section::from_triplets(vec![triplet(2, n, 2)]),
            vec![
                Term::new(0, Section::from_triplets(vec![triplet(1, n - 1, 2)])),
                Term::new(0, Section::from_triplets(vec![triplet(3, n + 1, 2)])),
            ],
            Combine::Average,
            &doms,
        )
        .unwrap();
        let black = Assignment::new(
            0,
            Section::from_triplets(vec![triplet(1, n, 2)]),
            vec![
                Term::new(0, Section::from_triplets(vec![triplet(0, n - 1, 2)])),
                Term::new(0, Section::from_triplets(vec![triplet(2, n + 1, 2)])),
            ],
            Combine::Average,
            &doms,
        )
        .unwrap();
        let plan = compile(&arrays, &[red, black]);
        assert_eq!(plan.supersteps().len(), 2, "black reads what red writes");
        let clean: Vec<&UnitMeta> =
            plan.units().iter().filter(|u| !u.post_dirty && !u.intra_dirty).collect();
        // exactly the units sourcing the never-written boundary elements
        assert!(!clean.is_empty(), "U(0)/U(n+1) ghost units must be clean");
        let total_clean: usize = clean.iter().map(|u| u.len).sum();
        assert_eq!(total_clean, 2, "one element each for U(0) and U(n+1)");
    }

    #[test]
    fn interval_helpers() {
        let merged = merge_intervals(vec![(5, 8), (0, 2), (2, 4), (7, 10)]);
        assert_eq!(merged, vec![(0, 4), (5, 10)]);
        assert!(intersects(&merged, 3, 5));
        assert!(!intersects(&merged, 4, 5));
        assert!(intersects(&merged, 9, 20));
        assert!(!intersects(&merged, 10, 20));
    }
}
