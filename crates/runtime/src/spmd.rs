//! A true message-passing SPMD executor: the [`ChannelsBackend`].
//!
//! Each simulated processor runs as a **long-lived worker thread** that
//! owns only its local shards (one buffer per array) plus its ghost
//! regions for the statement being executed. Data moves between workers
//! exclusively as packed messages over channels — no worker ever reads
//! another worker's buffer, which is what finally *validates* that the
//! compiled schedules (and the paper's statically-computed communication
//! sets behind them) are sufficient for a real distributed-memory
//! machine.
//!
//! One superstep ([`ChannelsBackend::step`] via the
//! [`ExchangeBackend`] trait):
//!
//! 1. the driver moves each processor's local buffers *by value* into its
//!    worker (an ownership handoff — pointer moves, no copying);
//! 2. every worker packs its local gather runs from its own shards, then
//!    packs **one message per outgoing pair** from the plan's
//!    [`MessagePlan`] and ships it; spent message buffers are recycled
//!    through a shared free-list, so warm steps reuse wire buffers
//!    instead of growing the heap;
//! 3. every worker receives exactly the messages the frozen schedule says
//!    it must (asserting each physically received buffer's length against
//!    its schedule — sender and receiver executing different plans fails
//!    loudly), unpacks them into its packed operand buffers (kept across
//!    steps, per worker), and computes into its own LHS shard;
//! 4. the driver collects the shards back and reinstalls them. The
//!    schedule itself was already cross-checked pair for pair against the
//!    independent region-algebraic [`CommAnalysis`](crate::CommAnalysis)
//!    at inspect time (see [`ExecPlan::inspect`]).
//!
//! Workers persist across supersteps (and across plans — any plan with
//! the same processor count reuses them), so iterated programs pay thread
//! spawn cost **once**, not per timestep: this is what
//! [`crate::Program::run_parallel`] replays through once warm.

use crate::array::DistArray;
use crate::backend::ExchangeBackend;
use crate::fuse::ProgramPlan;
use crate::plan::{compute_proc, ExecPlan};
use crate::workspace::PlanWorkspace;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A work order for a worker.
#[derive(Debug)]
enum Cmd {
    /// One per-statement BSP superstep.
    Step(Step),
    /// One whole fused timestep (every superstep of a [`ProgramPlan`]).
    Fused(FusedStep),
}

/// One superstep's work order for a worker: the compiled plan plus the
/// worker's own shards (local buffer of every array), moved in by value.
#[derive(Debug)]
struct Step {
    plan: Arc<ExecPlan>,
    shards: Vec<Vec<f64>>,
}

/// One fused timestep's work order: the fused plan, the timestep's
/// effective-send mask (shared by every worker, so sender and receiver
/// agree on which units ride the wire), and the worker's shards.
#[derive(Debug)]
struct FusedStep {
    plan: Arc<ProgramPlan>,
    eff: Arc<Vec<bool>>,
    /// Mask rebuild stamp from [`crate::fuse::FusedState`] — workers
    /// re-derive their per-pair effective totals only when it moves.
    eff_version: u64,
    shards: Vec<Vec<f64>>,
}

/// A worker's completed superstep: its shards, moved back to the driver.
#[derive(Debug)]
struct Done {
    proc: usize,
    shards: Vec<Vec<f64>>,
}

/// Identifies an unfused message, which the receiver matches to its
/// schedule by sender (one pair per sender per statement). Fused
/// messages instead carry their [`FusedPair`](crate::FusedPair) index.
const UNFUSED: u32 = u32::MAX;

/// A packed message on the wire.
#[derive(Debug)]
struct Msg {
    from: u32,
    /// [`UNFUSED`] for a per-statement message; otherwise the index of
    /// the fused pair the payload belongs to.
    pair: u32,
    data: Vec<f64>,
}

/// Shared free-list of spent message buffers: receivers return unpacked
/// buffers here, senders take them back before allocating fresh ones —
/// the message-passing analogue of persistent MPI requests.
type BufferPool = Arc<Mutex<Vec<Vec<f64>>>>;

/// How long the driver waits for a worker's superstep before concluding
/// the fleet is wedged (a schedule bug, not back-pressure: channels are
/// unbounded, so a correct superstep cannot deadlock).
const WORKER_TIMEOUT: Duration = Duration::from_secs(120);

/// Per-worker fused-replay scratch, persistent across timesteps: the
/// per-statement packed operand buffers ghost-region reuse relies on
/// (`packed[s][t]` mirrors the shared path's `FusedWorkspace`), keyed by
/// the plan's allocation so a new fused plan rebuilds them (the driver
/// starts every new plan all-dirty, so the fresh zeros never reach a
/// kernel), plus per-timestep arrival bookkeeping.
#[derive(Debug, Default)]
struct FusedScratch {
    key: usize,
    packed: Vec<Vec<Vec<f64>>>,
    arrived: Vec<bool>,
    eff_elems: Vec<usize>,
    /// `(plan key, mask version)` the cached `eff_elems` were computed
    /// for — steady warm timesteps reuse them without rescanning the
    /// fused segments.
    eff_key: (usize, u64),
}

/// One unfused BSP superstep on a worker (see the module docs). Returns
/// `false` iff the superstep was abandoned on shutdown — the caller must
/// then exit without sending a `Done`.
#[allow(clippy::too_many_arguments)]
fn run_unfused_step(
    me: usize,
    plan: &Arc<ExecPlan>,
    shards: &mut [Vec<f64>],
    packed: &mut Vec<Vec<f64>>,
    inbox: &Receiver<Msg>,
    peers: &[Sender<Msg>],
    pool: &BufferPool,
    shutdown: &Arc<AtomicBool>,
) -> bool {
    let pp = &plan.per_proc()[me];
    let me32 = me as u32;
    if packed.len() != pp.terms.len()
        || packed.iter().zip(&pp.terms).any(|(b, t)| b.len() != t.elements)
    {
        *packed = pp.terms.iter().map(|t| vec![0.0f64; t.elements]).collect();
    }
    // phase 1: pack local runs from this worker's own shards
    for (ts, buf) in pp.terms.iter().zip(packed.iter_mut()) {
        for r in ts.runs.iter().filter(|r| r.src == me32) {
            buf[r.dst_off..r.dst_off + r.len]
                .copy_from_slice(&shards[ts.array][r.src_off..r.src_off + r.len]);
        }
    }
    // phase 2a: pack and ship one message per outgoing pair
    let msgs = plan.message_plan();
    for pair in msgs.pairs().iter().filter(|p| p.sender == me32) {
        let mut data = pool.lock().expect("pool lock").pop().unwrap_or_default();
        data.clear();
        data.reserve(pair.elements);
        for seg in &pair.segments {
            data.extend_from_slice(&shards[seg.array][seg.src_off..seg.src_off + seg.len]);
        }
        peers[pair.receiver as usize]
            .send(Msg { from: me32, pair: UNFUSED, data })
            .expect("receiving worker is alive");
    }
    // phase 2b: receive exactly the messages the schedule promises.
    // Bounded waits: if the fleet is shutting down (backend dropped,
    // or unwinding after a peer died), abandon the superstep instead
    // of blocking forever on a message that will never arrive. The
    // shutdown flag is a dedicated signal — probing the command
    // channel here could swallow a queued command.
    let expected = msgs.pairs().iter().filter(|p| p.receiver == me32).count();
    for _ in 0..expected {
        let msg = loop {
            match inbox.recv_timeout(Duration::from_millis(50)) {
                Ok(m) => break Some(m),
                Err(_) if shutdown.load(Ordering::Relaxed) => break None,
                Err(_) => continue,
            }
        };
        let Some(Msg { from, data, .. }) = msg else {
            return false; // shutdown mid-superstep
        };
        let pair = msgs.pair(from, me32).expect("every arriving message has a schedule");
        // a physically received buffer whose length disagrees with
        // the receiver's schedule means sender and receiver executed
        // different plans — fail loudly, never unpack garbage
        assert_eq!(
            data.len(),
            pair.elements,
            "worker {}: message from {} has {} elements, schedule says {}",
            me + 1,
            from + 1,
            data.len(),
            pair.elements
        );
        let mut off = 0usize;
        for seg in &pair.segments {
            packed[seg.term][seg.dst_off..seg.dst_off + seg.len]
                .copy_from_slice(&data[off..off + seg.len]);
            off += seg.len;
        }
        pool.lock().expect("pool lock").push(data);
    }
    // phase 3: compute into this worker's own LHS shard
    compute_proc(pp, &mut shards[plan.lhs()], packed, plan.combine());
    true
}

/// One whole fused timestep on a worker: run the [`ProgramPlan`]'s
/// supersteps **without global barriers** — pack the superstep's local
/// runs, ship every outgoing fused pair *hoisted* to this phase (only its
/// effective segments; an all-clean pair sends nothing and the receiver,
/// holding the same mask, skips it too), unpack whatever has arrived
/// (messages for later supersteps are welcome early — remote and local
/// runs fill disjoint buffer positions), block only on the arrivals this
/// superstep's kernels actually read, then compute. A pair packed at an
/// earlier phase than its home superstep is therefore in flight while
/// the intervening supersteps compute — the pack/exchange-overlap leg of
/// the fusion design. Returns `false` iff abandoned on shutdown.
#[allow(clippy::too_many_arguments)]
fn run_fused_step(
    me: usize,
    plan: &Arc<ProgramPlan>,
    eff: &[bool],
    eff_version: u64,
    shards: &mut [Vec<f64>],
    scratch: &mut FusedScratch,
    inbox: &Receiver<Msg>,
    peers: &[Sender<Msg>],
    pool: &BufferPool,
    shutdown: &Arc<AtomicBool>,
) -> bool {
    let me32 = me as u32;
    let key = Arc::as_ptr(plan) as usize;
    if scratch.key != key {
        scratch.packed = plan
            .plans()
            .iter()
            .map(|p| {
                p.per_proc()[me].terms.iter().map(|t| vec![0.0f64; t.elements]).collect()
            })
            .collect();
        scratch.key = key;
    }
    scratch.arrived.clear();
    scratch.arrived.resize(plan.pairs().len(), false);
    if scratch.eff_key != (key, eff_version) {
        scratch.eff_elems.clear();
        scratch
            .eff_elems
            .extend((0..plan.pairs().len()).map(|k| plan.pair_eff_elements(k, eff)));
        scratch.eff_key = (key, eff_version);
    }

    for phase in 0..plan.supersteps().len() {
        // pack this superstep's local runs from this worker's own shards
        for &s in &plan.supersteps()[phase].stmts {
            let pp = &plan.plans()[s].per_proc()[me];
            for (ts, buf) in pp.terms.iter().zip(scratch.packed[s].iter_mut()) {
                for r in ts.runs.iter().filter(|r| r.src == me32) {
                    buf[r.dst_off..r.dst_off + r.len]
                        .copy_from_slice(&shards[ts.array][r.src_off..r.src_off + r.len]);
                }
            }
        }
        // ship every outgoing pair hoisted to this phase
        for (k, pair) in plan.pairs().iter().enumerate() {
            if pair.pack_phase != phase || pair.sender != me32 || scratch.eff_elems[k] == 0 {
                continue;
            }
            let mut data = pool.lock().expect("pool lock").pop().unwrap_or_default();
            data.clear();
            data.reserve(scratch.eff_elems[k]);
            for seg in pair.segments.iter().filter(|s| eff[s.unit]) {
                data.extend_from_slice(&shards[seg.array][seg.src_off..seg.src_off + seg.len]);
            }
            peers[pair.receiver as usize]
                .send(Msg { from: me32, pair: k as u32, data })
                .expect("receiving worker is alive");
        }
        // block until every pair this superstep's kernels read has
        // arrived, unpacking arrivals (from any phase) as they come in
        loop {
            let waiting = plan.pairs().iter().enumerate().any(|(k, p)| {
                p.superstep == phase
                    && p.receiver == me32
                    && scratch.eff_elems[k] > 0
                    && !scratch.arrived[k]
            });
            if !waiting {
                break;
            }
            let msg = loop {
                match inbox.recv_timeout(Duration::from_millis(50)) {
                    Ok(m) => break Some(m),
                    Err(_) if shutdown.load(Ordering::Relaxed) => break None,
                    Err(_) => continue,
                }
            };
            let Some(Msg { from, pair: k, data }) = msg else {
                return false; // shutdown mid-timestep
            };
            let k = k as usize;
            assert_ne!(k, UNFUSED as usize, "unfused message during a fused timestep");
            let pair = &plan.pairs()[k];
            assert_eq!(
                (pair.sender, pair.receiver),
                (from, me32),
                "worker {}: fused pair {} routed to the wrong worker",
                me + 1,
                k
            );
            // sender and receiver hold the same mask, so a length
            // mismatch means they executed different fused plans
            assert_eq!(
                data.len(),
                scratch.eff_elems[k],
                "worker {}: fused message from {} has {} elements, mask says {}",
                me + 1,
                from + 1,
                data.len(),
                scratch.eff_elems[k]
            );
            let mut off = 0usize;
            for seg in pair.segments.iter().filter(|s| eff[s.unit]) {
                scratch.packed[seg.stmt][seg.term][seg.dst_off..seg.dst_off + seg.len]
                    .copy_from_slice(&data[off..off + seg.len]);
                off += seg.len;
            }
            scratch.arrived[k] = true;
            pool.lock().expect("pool lock").push(data);
        }
        // compute this superstep's statements into this worker's shards
        for &s in &plan.supersteps()[phase].stmts {
            let sp = &plan.plans()[s];
            compute_proc(
                &sp.per_proc()[me],
                &mut shards[sp.lhs()],
                &scratch.packed[s],
                sp.combine(),
            );
        }
    }
    true
}

fn worker_loop(
    me: usize,
    cmds: Receiver<Cmd>,
    inbox: Receiver<Msg>,
    peers: Vec<Sender<Msg>>,
    done: Sender<Done>,
    pool: BufferPool,
    shutdown: Arc<AtomicBool>,
) {
    // per-worker packed operand buffers, reused across supersteps
    let mut packed: Vec<Vec<f64>> = Vec::new();
    let mut fused = FusedScratch::default();
    while let Ok(cmd) = cmds.recv() {
        let shards = match cmd {
            Cmd::Step(Step { plan, mut shards }) => {
                if !run_unfused_step(
                    me, &plan, &mut shards, &mut packed, &inbox, &peers, &pool, &shutdown,
                ) {
                    return; // shutdown mid-superstep: exit without a Done
                }
                shards
            }
            Cmd::Fused(FusedStep { plan, eff, eff_version, mut shards }) => {
                if !run_fused_step(
                    me, &plan, &eff, eff_version, &mut shards, &mut fused, &inbox, &peers,
                    &pool, &shutdown,
                ) {
                    return;
                }
                shards
            }
        };
        done.send(Done { proc: me, shards }).expect("driver is alive");
    }
}

/// The message-passing SPMD backend (see module docs). Workers are
/// spawned lazily on the first superstep and persist until the backend is
/// dropped; a plan over a different processor count replaces the fleet.
pub struct ChannelsBackend {
    np: usize,
    cmd_txs: Vec<Sender<Cmd>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    done_rx: Option<Receiver<Done>>,
    pool: BufferPool,
    /// Set (before the command channels drop) when the fleet is being
    /// torn down, so a worker blocked mid-superstep on its inbox abandons
    /// instead of waiting for a message that will never arrive.
    shutdown: Arc<AtomicBool>,
    bytes_sent: u64,
    workers_spawned: u64,
    steps: u64,
}

impl Default for ChannelsBackend {
    fn default() -> Self {
        ChannelsBackend::new()
    }
}

impl std::fmt::Debug for ChannelsBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelsBackend")
            .field("workers", &self.cmd_txs.len())
            .field("workers_spawned", &self.workers_spawned)
            .field("steps", &self.steps)
            .field("bytes_sent", &self.bytes_sent)
            .finish_non_exhaustive()
    }
}

impl ChannelsBackend {
    /// A backend with no workers yet (they spawn on the first superstep).
    pub fn new() -> Self {
        ChannelsBackend {
            np: 0,
            cmd_txs: Vec::new(),
            handles: Vec::new(),
            done_rx: None,
            pool: Arc::new(Mutex::new(Vec::new())),
            shutdown: Arc::new(AtomicBool::new(false)),
            bytes_sent: 0,
            workers_spawned: 0,
            steps: 0,
        }
    }

    /// Worker threads spawned over the backend's lifetime — stays at the
    /// processor count across warm supersteps (the persistent-worker
    /// contract `zero_alloc_replay` pins).
    pub fn workers_spawned(&self) -> u64 {
        self.workers_spawned
    }

    /// Supersteps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Live worker count (0 before the first superstep).
    pub fn workers(&self) -> usize {
        self.cmd_txs.len()
    }

    fn ensure_workers(&mut self, np: usize) {
        if self.np == np && !self.cmd_txs.is_empty() {
            return;
        }
        self.shutdown();
        self.shutdown = Arc::new(AtomicBool::new(false));
        let (done_tx, done_rx) = unbounded();
        let mut inbox_rxs = Vec::with_capacity(np);
        let mut peer_txs = Vec::with_capacity(np);
        for _ in 0..np {
            let (tx, rx) = unbounded();
            peer_txs.push(tx);
            inbox_rxs.push(rx);
        }
        for (me, inbox) in inbox_rxs.into_iter().enumerate() {
            let (cmd_tx, cmd_rx) = unbounded();
            let peers = peer_txs.clone();
            let done = done_tx.clone();
            let pool = self.pool.clone();
            let stop = self.shutdown.clone();
            self.handles.push(
                std::thread::Builder::new()
                    .name(format!("hpf-spmd-{}", me + 1))
                    .spawn(move || worker_loop(me, cmd_rx, inbox, peers, done, pool, stop))
                    .expect("spawn SPMD worker"),
            );
            self.cmd_txs.push(cmd_tx);
        }
        self.done_rx = Some(done_rx);
        self.np = np;
        self.workers_spawned += np as u64;
    }

    /// Ensure a fleet of `np` workers is running and return the spawn
    /// generation (cumulative workers spawned). The fused replay path
    /// calls this *before* computing its effective-send mask: a changed
    /// generation means the workers' persistent packed buffers are gone,
    /// so every ghost unit must be re-sent (see
    /// [`crate::fuse::FusedState`]).
    pub(crate) fn prepare(&mut self, np: usize) -> u64 {
        self.ensure_workers(np);
        self.workers_spawned
    }

    /// Execute one whole fused timestep across the worker fleet: hand
    /// each worker its shards plus the shared effective-send mask,
    /// collect the shards back, and account the masked wire traffic
    /// (`wire_elements` is the mask's element count — sender-side
    /// measured lengths are asserted against it inside every worker).
    /// Counts one step per timestep.
    pub(crate) fn step_fused(
        &mut self,
        plan: &Arc<ProgramPlan>,
        arrays: &mut [DistArray<f64>],
        eff: Arc<Vec<bool>>,
        eff_version: u64,
        wire_elements: u64,
    ) {
        assert!(plan.is_valid_for(arrays), "stale fused plan: an involved array was remapped");
        let np = plan.np();
        self.ensure_workers(np);
        for (p, cmd) in self.cmd_txs.iter().enumerate() {
            let shards: Vec<Vec<f64>> =
                arrays.iter_mut().map(|a| a.take_local(p)).collect();
            cmd.send(Cmd::Fused(FusedStep {
                plan: plan.clone(),
                eff: eff.clone(),
                eff_version,
                shards,
            }))
            .expect("worker is alive");
        }
        self.collect_done(arrays, np);
        self.bytes_sent += wire_elements * std::mem::size_of::<f64>() as u64;
        self.steps += 1;
    }

    /// Collect `np` completed work orders and reinstall their shards,
    /// reporting a crashed worker promptly by name.
    fn collect_done(&mut self, arrays: &mut [DistArray<f64>], np: usize) {
        let done_rx = self.done_rx.as_ref().expect("workers are running");
        let deadline = Instant::now() + WORKER_TIMEOUT;
        let mut reported = vec![false; np];
        for _ in 0..np {
            // poll in short slices so a crashed worker is reported
            // promptly by name instead of stalling the full timeout
            let done = loop {
                match done_rx.recv_timeout(Duration::from_millis(50)) {
                    Ok(d) => break d,
                    Err(RecvTimeoutError::Disconnected) => {
                        panic!("every SPMD worker died mid-superstep")
                    }
                    Err(RecvTimeoutError::Timeout) => {
                        // a finished handle while its Done is outstanding
                        // means the worker panicked (idle workers block on
                        // their command channel, they never exit)
                        if let Some(dead) = self
                            .handles
                            .iter()
                            .position(|h| h.is_finished())
                            .filter(|&i| !reported[i])
                        {
                            panic!("SPMD worker {} died mid-superstep", dead + 1);
                        }
                        assert!(
                            Instant::now() < deadline,
                            "SPMD superstep wedged (no worker progress within {:?})",
                            WORKER_TIMEOUT
                        );
                    }
                }
            };
            for (a, buf) in arrays.iter_mut().zip(done.shards) {
                a.put_local(done.proc, buf);
            }
            reported[done.proc] = true;
        }
    }

    /// Stop and join the worker fleet: raise the shutdown flag (so a
    /// worker blocked mid-superstep abandons), then drop the command
    /// channels (ending each idle worker's loop) and join.
    fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        self.cmd_txs.clear();
        self.done_rx = None;
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        self.np = 0;
    }
}

impl Drop for ChannelsBackend {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl ExchangeBackend for ChannelsBackend {
    fn name(&self) -> &'static str {
        "channels"
    }

    /// One SPMD superstep. The [`PlanWorkspace`] is unused — each worker
    /// keeps its own packed operand buffers — but accepted so backends are
    /// interchangeable behind the trait.
    fn step(
        &mut self,
        plan: &Arc<ExecPlan>,
        arrays: &mut [DistArray<f64>],
        _ws: &mut PlanWorkspace,
    ) {
        assert!(plan.is_valid_for(arrays), "stale plan: an involved array was remapped");
        let np = plan.per_proc().len();
        self.ensure_workers(np);
        // ownership handoff: every worker gets exactly its own shards
        for (p, cmd) in self.cmd_txs.iter().enumerate() {
            let shards: Vec<Vec<f64>> =
                arrays.iter_mut().map(|a| a.take_local(p)).collect();
            cmd.send(Cmd::Step(Step { plan: plan.clone(), shards }))
                .expect("worker is alive");
        }
        self.collect_done(arrays, np);
        // schedule ≡ analysis was already cross-checked at inspect time
        // (ExecPlan::inspect); the wire accounting here is the schedule's
        self.bytes_sent += plan.message_plan().wire_bytes();
        self.steps += 1;
    }

    fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::{Assignment, Combine, Term};
    use crate::exec::dense_reference;
    use hpf_core::{DataSpace, DistributeSpec, FormatSpec};
    use hpf_index::{span, IndexDomain, Section};

    fn setup(n: usize, np: usize, fmts: &[FormatSpec]) -> Vec<DistArray<f64>> {
        let mut ds = DataSpace::new(np);
        let mut out = Vec::new();
        for (k, f) in fmts.iter().enumerate() {
            let name = format!("A{k}");
            let id = ds.declare(&name, IndexDomain::of_shape(&[n]).unwrap()).unwrap();
            ds.distribute(id, &DistributeSpec::new(vec![f.clone()])).unwrap();
            out.push(DistArray::from_fn(
                &name,
                ds.effective(id).unwrap(),
                np,
                |i| (i[0] * (k as i64 + 3) - 7) as f64,
            ));
        }
        out
    }

    fn shift_stmt(n: i64, arrays: &[DistArray<f64>]) -> Assignment {
        let doms: Vec<&IndexDomain> = arrays.iter().map(|a| a.domain()).collect();
        Assignment::new(
            0,
            Section::from_triplets(vec![span(2, n)]),
            vec![Term::new(1, Section::from_triplets(vec![span(1, n - 1)]))],
            Combine::Copy,
            &doms,
        )
        .unwrap()
    }

    #[test]
    fn channels_matches_reference_and_counts_bytes() {
        let mut arrays = setup(48, 4, &[FormatSpec::Block, FormatSpec::Cyclic(3)]);
        let stmt = shift_stmt(48, &arrays);
        let plan = Arc::new(ExecPlan::inspect(&arrays, &stmt).unwrap());
        let mut ws = PlanWorkspace::new();
        let mut backend = ChannelsBackend::new();
        for step in 1..=4u64 {
            let expect = dense_reference(&arrays, &stmt);
            backend.step(&plan, &mut arrays, &mut ws);
            assert_eq!(arrays[0].to_dense(), expect, "step {step}");
            assert_eq!(backend.bytes_sent(), step * plan.message_plan().wire_bytes());
        }
        assert_eq!(backend.steps(), 4);
        assert_eq!(backend.workers(), 4);
        assert_eq!(backend.workers_spawned(), 4, "workers persist across steps");
    }

    #[test]
    fn different_processor_count_respawns_fleet() {
        let mut backend = ChannelsBackend::new();
        let mut ws = PlanWorkspace::new();
        let mut a4 = setup(32, 4, &[FormatSpec::Block, FormatSpec::Block]);
        let s4 = shift_stmt(32, &a4);
        let p4 = Arc::new(ExecPlan::inspect(&a4, &s4).unwrap());
        backend.step(&p4, &mut a4, &mut ws);
        assert_eq!(backend.workers(), 4);
        let mut a3 = setup(32, 3, &[FormatSpec::Cyclic(1), FormatSpec::Block]);
        let s3 = shift_stmt(32, &a3);
        let p3 = Arc::new(ExecPlan::inspect(&a3, &s3).unwrap());
        let expect = dense_reference(&a3, &s3);
        backend.step(&p3, &mut a3, &mut ws);
        assert_eq!(a3[0].to_dense(), expect);
        assert_eq!(backend.workers(), 3);
        assert_eq!(backend.workers_spawned(), 7, "4 then 3");
        // and back on the first plan the fleet respawns again
        backend.step(&p4, &mut a4, &mut ws);
        assert_eq!(backend.workers_spawned(), 11);
    }

    #[test]
    fn aliasing_shift_is_bsp_safe_over_channels() {
        // A(2:16) = A(1:15): every worker ships its messages before
        // computing, so receivers see pre-assignment values
        let mut arrays = setup(16, 4, &[FormatSpec::Block]);
        let doms: Vec<&IndexDomain> = arrays.iter().map(|a| a.domain()).collect();
        let stmt = Assignment::new(
            0,
            Section::from_triplets(vec![span(2, 16)]),
            vec![Term::new(0, Section::from_triplets(vec![span(1, 15)]))],
            Combine::Copy,
            &doms,
        )
        .unwrap();
        let plan = Arc::new(ExecPlan::inspect(&arrays, &stmt).unwrap());
        let expect = dense_reference(&arrays, &stmt);
        ChannelsBackend::new().step(&plan, &mut arrays, &mut PlanWorkspace::new());
        assert_eq!(arrays[0].to_dense(), expect);
    }
}
