/// The classic distributed-memory cost model: a message of `n` elements
/// over `h` hops costs `latency + n·per_element·(1 + (h−1)·hop_factor)`,
/// and local computation costs `flop` per element-operation.
///
/// Defaults are loosely calibrated to an iPSC/860-class machine (the
/// hardware HPF targeted): ~75 µs message latency, ~0.4 µs per 8-byte
/// element (≈ 20 MB/s), ~0.05 µs per flop. Only *ratios* matter for the
/// experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Per-message startup cost (µs).
    pub latency: f64,
    /// Per-element transfer cost (µs).
    pub per_element: f64,
    /// Per-element-operation compute cost (µs).
    pub flop: f64,
    /// Extra per-element cost fraction for each hop beyond the first.
    pub hop_factor: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel { latency: 75.0, per_element: 0.4, flop: 0.05, hop_factor: 0.25 }
    }
}

impl CostModel {
    /// A zero-latency, unit-bandwidth model (useful for pure volume
    /// comparisons in tests).
    pub fn unit() -> Self {
        CostModel { latency: 0.0, per_element: 1.0, flop: 0.0, hop_factor: 0.0 }
    }

    /// Time (µs) for one message of `elements` elements over `hops` hops.
    pub fn message_time(&self, elements: u64, hops: u32) -> f64 {
        if elements == 0 {
            return 0.0;
        }
        let hop_scale = 1.0 + self.hop_factor * hops.saturating_sub(1) as f64;
        self.latency + elements as f64 * self.per_element * hop_scale
    }

    /// Time (µs) to perform `ops` element-operations locally.
    pub fn compute_time(&self, ops: u64) -> f64 {
        ops as f64 * self.flop
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_time_formula() {
        let c = CostModel { latency: 100.0, per_element: 2.0, flop: 0.0, hop_factor: 0.5 };
        assert_eq!(c.message_time(10, 1), 100.0 + 20.0);
        assert_eq!(c.message_time(10, 3), 100.0 + 20.0 * 2.0); // 1 + 0.5*2
        assert_eq!(c.message_time(0, 5), 0.0);
    }

    #[test]
    fn compute_time_linear() {
        let c = CostModel::default();
        assert!(c.compute_time(1000) > c.compute_time(100));
        assert_eq!(CostModel::unit().compute_time(1000), 0.0);
    }
}
