//! E6 — CONSTRUCT overhead (Definition 4): owner lookup through an
//! alignment vs the base's direct lookup, for affine, offset, replicated
//! and expression (MIN-truncated) alignments.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hpf_core::{AlignExpr, AlignSpec, DataSpace, DistributeSpec, FormatSpec};
use hpf_index::{Idx, IndexDomain};

fn bench(c: &mut Criterion) {
    let n = 100_000i64;
    let np = 16usize;
    let mut g = c.benchmark_group("construct");

    let build = |spec: Option<AlignSpec>| {
        let mut ds = DataSpace::new(np);
        let b = ds
            .declare("B", IndexDomain::standard(&[(1, 4 * n)]).unwrap())
            .unwrap();
        ds.distribute(b, &DistributeSpec::new(vec![FormatSpec::Cyclic(3)])).unwrap();
        match spec {
            None => ds.effective(b).unwrap(),
            Some(s) => {
                let a = ds.declare("A", IndexDomain::standard(&[(1, n)]).unwrap()).unwrap();
                ds.align(a, b, &s).unwrap();
                ds.effective(a).unwrap()
            }
        }
    };

    let d = AlignExpr::dummy;
    let cases = vec![
        ("direct_base", build(None)),
        ("identity_align", build(Some(AlignSpec::identity(1)))),
        ("affine_2i_plus_5", build(Some(AlignSpec::with_exprs(1, vec![d(0) * 2 + 5])))),
        (
            "expr_min_truncated",
            build(Some(AlignSpec::with_exprs(
                1,
                vec![(d(0) * 2).min(AlignExpr::c(2 * n))],
            ))),
        ),
    ];
    for (name, map) in &cases {
        g.bench_function(*name, |bch| {
            let mut i = 1i64;
            bch.iter(|| {
                i = i % n + 1;
                black_box(map.owners(&Idx::d1(black_box(i))))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
