//! String generation from a small regex subset.
//!
//! Supported syntax (what this workspace's tests use, plus a little):
//!
//! * literal characters,
//! * character classes `[...]` with ranges (`A-Z`), escapes (`\n`, `\t`,
//!   `\\`, `\]`), and a literal `-` when first or last,
//! * the escape `\PC` — any printable ASCII character (proptest's
//!   Unicode-printable class, restricted to ASCII here),
//! * `\d`, `\w`, `\s` shorthands,
//! * postfix repetitions `*` (0..=32), `+` (1..=32), `?`, `{m}`, `{m,n}`.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    /// A fixed character.
    Literal(char),
    /// Choose uniformly among these characters.
    Class(Vec<char>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn printable_ascii() -> Vec<char> {
    (0x20u8..0x7F).map(|b| b as char).collect()
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0usize;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '\\' => {
                i += 1;
                match chars.get(i) {
                    Some('P') => {
                        // proptest spells "printable" as \PC; consume the C
                        if chars.get(i + 1) == Some(&'C') {
                            i += 1;
                        }
                        i += 1;
                        Atom::Class(printable_ascii())
                    }
                    Some('d') => {
                        i += 1;
                        Atom::Class(('0'..='9').collect())
                    }
                    Some('w') => {
                        i += 1;
                        let mut cs: Vec<char> = ('a'..='z').collect();
                        cs.extend('A'..='Z');
                        cs.extend('0'..='9');
                        cs.push('_');
                        Atom::Class(cs)
                    }
                    Some('s') => {
                        i += 1;
                        Atom::Class(vec![' ', '\t', '\n'])
                    }
                    Some('n') => {
                        i += 1;
                        Atom::Literal('\n')
                    }
                    Some('t') => {
                        i += 1;
                        Atom::Literal('\t')
                    }
                    Some(&c) => {
                        i += 1;
                        Atom::Literal(c)
                    }
                    None => Atom::Literal('\\'),
                }
            }
            '[' => {
                i += 1;
                let mut cs = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let c = if chars[i] == '\\' {
                        i += 1;
                        match chars.get(i) {
                            Some('n') => '\n',
                            Some('t') => '\t',
                            Some(&e) => e,
                            None => '\\',
                        }
                    } else {
                        chars[i]
                    };
                    // range `a-b` (a `-` before `]` is a literal)
                    if chars.get(i + 1) == Some(&'-')
                        && i + 2 < chars.len()
                        && chars[i + 2] != ']'
                    {
                        let hi = chars[i + 2];
                        for v in (c as u32)..=(hi as u32) {
                            if let Some(ch) = char::from_u32(v) {
                                cs.push(ch);
                            }
                        }
                        i += 3;
                    } else {
                        cs.push(c);
                        i += 1;
                    }
                }
                i += 1; // closing ]
                assert!(!cs.is_empty(), "empty character class in pattern {pattern:?}");
                Atom::Class(cs)
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // postfix repetition
        let (min, max) = match chars.get(i) {
            Some('*') => {
                i += 1;
                (0, 32)
            }
            Some('+') => {
                i += 1;
                (1, 32)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("repetition lower bound"),
                        hi.trim().parse().expect("repetition upper bound"),
                    ),
                    None => {
                        let n: usize = body.trim().parse().expect("repetition count");
                        (n, n)
                    }
                }
            }
            _ => (1, 1),
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in parse(pattern) {
        let count = piece.min + rng.below(piece.max - piece.min + 1);
        for _ in 0..count {
            match &piece.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(cs) => out.push(cs[rng.below(cs.len())]),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_test("string")
    }

    #[test]
    fn printable_star() {
        let mut r = rng();
        for _ in 0..50 {
            let s = generate("\\PC*", &mut r);
            assert!(s.len() <= 32);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn class_with_ranges_escapes_and_counted_repetition() {
        let mut r = rng();
        // mirrors the parser_robustness pattern (trailing literal `-`)
        let pat = "[A-Za-z0-9 ,():*+=!$\\n-]{0,200}";
        for _ in 0..50 {
            let s = generate(pat, &mut r);
            assert!(s.chars().count() <= 200);
            for c in s.chars() {
                assert!(
                    c.is_ascii_alphanumeric()
                        || " ,():*+=!$\n-".contains(c),
                    "unexpected char {c:?}"
                );
            }
        }
    }

    #[test]
    fn literals_and_exact_counts() {
        let mut r = rng();
        assert_eq!(generate("abc", &mut r), "abc");
        assert_eq!(generate("a{3}", &mut r), "aaa");
        let s = generate("x?", &mut r);
        assert!(s.is_empty() || s == "x");
    }
}
