//! Sampling strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::sync::Arc;

/// A strategy choosing uniformly from a fixed list of values.
#[derive(Clone)]
pub struct Select<T> {
    items: Arc<Vec<T>>,
}

impl<T: Clone + Debug> Strategy for Select<T> {
    type Value = T;
    fn pick(&self, rng: &mut TestRng) -> T {
        self.items[rng.below(self.items.len())].clone()
    }
}

/// `prop::sample::select(values)` — uniform choice from a non-empty list.
pub fn select<T: Clone + Debug>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "select from an empty list");
    Select { items: Arc::new(items) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_only_listed_values() {
        let mut r = TestRng::for_test("sample");
        let s = select(vec![2usize, 3, 5, 7]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let v = s.pick(&mut r);
            assert!([2, 3, 5, 7].contains(&v));
            seen.insert(v);
        }
        assert_eq!(seen.len(), 4);
    }
}
