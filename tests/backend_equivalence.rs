//! Backend-equivalence property suite: the `Channels` message-passing
//! SPMD executor, the `SharedMem` staged-copy backend, the direct
//! plan replay, and the dense naive oracle all agree bit-for-bit over
//! random block / cyclic(k) / general-block / replicated mappings — and
//! the bytes each backend actually puts on the wire match the frozen
//! schedules exactly (and, for partitioning mappings, the frozen
//! `CommAnalysis` pair for pair).
//!
//! This is what finally *validates* the paper's statically-computed
//! communication sets against a real distributed-memory execution model:
//! each `Channels` worker owns only its local shards, so any element the
//! schedule fails to ship would be read as stale/zero data and break the
//! equality with the oracle.

use hpf::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// Random GENERAL_BLOCK sizes: `np` non-negative lengths summing to `n`.
fn gb_sizes(n: usize, np: usize, seed: u64) -> Vec<i64> {
    use rand::{RngExt, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut cuts: Vec<i64> = (0..np.saturating_sub(1))
        .map(|_| rng.random_range(0..=n as u64) as i64)
        .collect();
    cuts.sort_unstable();
    cuts.push(n as i64);
    let mut prev = 0i64;
    cuts.into_iter()
        .map(|c| {
            let s = c - prev;
            prev = c;
            s
        })
        .collect()
}

/// One of the paper's mapping families, selected by `kind` (kind % 6 == 5
/// is full replication — the only non-partitioning family).
fn mapping_of(kind: u8, n: usize, np: usize, seed: u64) -> Arc<EffectiveDist> {
    if kind % 6 == 5 {
        return Arc::new(EffectiveDist::Replicated {
            domain: IndexDomain::of_shape(&[n]).unwrap(),
            procs: ProcSet::all(np),
        });
    }
    let fmt = match kind % 6 {
        0 => FormatSpec::Block,
        1 => FormatSpec::BlockBalanced,
        2 => FormatSpec::Cyclic(1),
        3 => FormatSpec::Cyclic(3),
        _ => FormatSpec::GeneralBlockSizes(gb_sizes(n, np, seed)),
    };
    let mut ds = DataSpace::new(np);
    let a = ds.declare("M", IndexDomain::of_shape(&[n]).unwrap()).unwrap();
    ds.distribute(a, &DistributeSpec::new(vec![fmt])).unwrap();
    ds.effective(a).unwrap()
}

fn build_arrays(n: usize, np: usize, ka: u8, kb: u8, seed: u64) -> Vec<DistArray<f64>> {
    vec![
        DistArray::from_fn("A", mapping_of(ka, n, np, seed), np, |i| i[0] as f64),
        DistArray::from_fn("B", mapping_of(kb, n, np, seed ^ 0x517c), np, |i| {
            (i[0] * 11 - 3) as f64
        }),
    ]
}

/// `A(2:n) = combine(B(1:n-1)[, A(1:n-1)])` — LHS aliasing included.
fn build_stmt(n: i64, combine_k: u8, arrays: &[DistArray<f64>]) -> Assignment {
    let doms: Vec<&IndexDomain> = arrays.iter().map(|a| a.domain()).collect();
    let rhs = Section::from_triplets(vec![span(1, n - 1)]);
    let (combine, terms) = match combine_k % 4 {
        0 => (Combine::Copy, vec![Term::new(1, rhs)]),
        1 => (Combine::Sum, vec![Term::new(1, rhs.clone()), Term::new(0, rhs)]),
        2 => (Combine::Average, vec![Term::new(1, rhs.clone()), Term::new(0, rhs)]),
        _ => (Combine::Max, vec![Term::new(1, rhs.clone()), Term::new(0, rhs)]),
    };
    Assignment::new(0, Section::from_triplets(vec![span(2, n)]), terms, combine, &doms)
        .unwrap()
}

/// A random 2-D mapping over an `np_side × np_side` grid (kind == 16 is
/// full replication).
fn mapping_2d(kind: u8, n: usize, np_side: usize, seed: u64) -> Arc<EffectiveDist> {
    let np = np_side * np_side;
    if kind >= 16 {
        return Arc::new(EffectiveDist::Replicated {
            domain: IndexDomain::of_shape(&[n, n]).unwrap(),
            procs: ProcSet::all(np),
        });
    }
    let fmt = |k: u8, s: u64| match k % 4 {
        0 => FormatSpec::Block,
        1 => FormatSpec::Cyclic(1),
        2 => FormatSpec::Cyclic(2),
        _ => FormatSpec::GeneralBlockSizes(gb_sizes(n, np_side, s)),
    };
    let mut ds = DataSpace::new(np);
    ds.declare_processors("G", IndexDomain::of_shape(&[np_side, np_side]).unwrap())
        .unwrap();
    let a = ds.declare("M", IndexDomain::of_shape(&[n, n]).unwrap()).unwrap();
    ds.distribute(
        a,
        &DistributeSpec::to(vec![fmt(kind % 4, seed), fmt(kind / 4, seed ^ 0x2e)], "G"),
    )
    .unwrap();
    ds.effective(a).unwrap()
}

/// A 2-D stencil-flavored statement over `A(2:n-1, 2:n-1)`.
fn build_stmt_2d(n: i64, combine_k: u8, arrays: &[DistArray<f64>]) -> Assignment {
    let doms: Vec<&IndexDomain> = arrays.iter().map(|a| a.domain()).collect();
    let west = Section::from_triplets(vec![span(1, n - 2), span(2, n - 1)]);
    let east = Section::from_triplets(vec![span(3, n), span(2, n - 1)]);
    let south = Section::from_triplets(vec![span(2, n - 1), span(1, n - 2)]);
    let (combine, terms) = match combine_k % 4 {
        0 => (Combine::Copy, vec![Term::new(1, west)]),
        1 => (
            Combine::Sum,
            vec![
                Term::new(1, west),
                Term::new(1, east.clone()),
                Term::new(1, south),
                Term::new(0, east),
            ],
        ),
        2 => (Combine::Average, vec![Term::new(1, west), Term::new(1, east)]),
        _ => (Combine::Max, vec![Term::new(1, west), Term::new(0, south)]),
    };
    Assignment::new(
        0,
        Section::from_triplets(vec![span(2, n - 1), span(2, n - 1)]),
        terms,
        combine,
        &doms,
    )
    .unwrap()
}

/// Run one statement on every execution path over identically-initialized
/// arrays and assert they all equal the dense oracle; then assert the
/// wire accounting: both backends moved exactly the frozen schedule's
/// bytes, and for partitioning mappings that equals the frozen
/// `CommAnalysis` down to the per-pair entries.
fn assert_backends_agree(
    arrays: Vec<DistArray<f64>>,
    stmt: &Assignment,
    partitioned: bool,
) {
    // clones share the mapping allocations, so one plan drives all three
    let mut direct = arrays;
    let mut shared = direct.clone();
    let mut channels = direct.clone();
    let plan = Arc::new(ExecPlan::inspect(&direct, stmt).unwrap());
    let expect = dense_reference(&direct, stmt);

    plan.execute_seq(&mut direct);
    let mut shared_be = SharedMemBackend::new();
    shared_be.step(&plan, &mut shared, &mut PlanWorkspace::new()).unwrap();
    let mut channels_be = ChannelsBackend::new();
    channels_be.step(&plan, &mut channels, &mut PlanWorkspace::new()).unwrap();

    assert_eq!(direct[0].to_dense(), expect, "direct replay ≡ oracle");
    assert_eq!(shared[0].to_dense(), expect, "SharedMem ≡ oracle");
    assert_eq!(channels[0].to_dense(), expect, "Channels ≡ oracle");
    assert_eq!(shared[1].to_dense(), channels[1].to_dense(), "RHS untouched");

    // bytes on the wire: measured == frozen message schedule, always
    let msgs = plan.message_plan();
    assert_eq!(shared_be.bytes_sent(), msgs.wire_bytes());
    assert_eq!(channels_be.bytes_sent(), msgs.wire_bytes());
    if partitioned {
        // ... and exactly the frozen CommAnalysis for partitioning
        // mappings, down to each (sender, receiver) entry
        let analysis = plan.analysis();
        assert!(msgs.matches_analysis());
        assert_eq!(msgs.wire_bytes(), analysis.total_bytes());
        assert_eq!(msgs.pairs().len(), analysis.comm.messages());
        for pair in msgs.pairs() {
            assert_eq!(
                pair.elements as u64,
                analysis
                    .comm
                    .elements_between(ProcId(pair.sender + 1), ProcId(pair.receiver + 1)),
                "pair {} → {}",
                pair.sender + 1,
                pair.receiver + 1
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// 1-D: Channels ≡ SharedMem ≡ direct replay ≡ dense oracle over
    /// random mapping-family pairs, with exact wire accounting.
    #[test]
    fn backends_agree_1d(
        n in 16usize..48,
        np in 1usize..5,
        ka in 0u8..6,
        kb in 0u8..6,
        seed in 0u64..1000,
        combine_k in 0u8..4,
    ) {
        let arrays = build_arrays(n, np, ka, kb, seed);
        let stmt = build_stmt(n as i64, combine_k, &arrays);
        let partitioned = ka % 6 != 5 && kb % 6 != 5;
        assert_backends_agree(arrays, &stmt, partitioned);
    }

    /// 2-D: the same equivalence over random per-dimension block /
    /// cyclic(k) / general-block formats and replicated mappings.
    #[test]
    fn backends_agree_2d(
        n in 6usize..14,
        np_side in 1usize..3,
        ka in 0u8..17,
        kb in 0u8..17,
        seed in 0u64..1000,
        combine_k in 0u8..4,
    ) {
        let np = np_side * np_side;
        let arrays = vec![
            DistArray::from_fn("A", mapping_2d(ka, n, np_side, seed), np, |i| {
                (i[0] * 29 + i[1]) as f64
            }),
            DistArray::from_fn("B", mapping_2d(kb, n, np_side, seed ^ 0x4d), np, |i| {
                (i[0] - 3 * i[1]) as f64
            }),
        ];
        let stmt = build_stmt_2d(n as i64, combine_k, &arrays);
        assert_backends_agree(arrays, &stmt, ka < 16 && kb < 16);
    }

    /// Iterated session timesteps agree across exchange backends, with
    /// the plan cache shared and the per-statement wire bytes accumulated
    /// faithfully on both.
    #[test]
    fn program_run_on_backends_agree(
        n in 16usize..40,
        np in 2usize..5,
        ka in 0u8..5,
        kb in 0u8..5,
        seed in 0u64..1000,
        combine_k in 0u8..4,
        timesteps in 1usize..4,
    ) {
        let mk_prog = || {
            let mut p = Program::new(build_arrays(n, np, ka, kb, seed));
            let stmt = build_stmt(n as i64, combine_k, &p.arrays);
            p.push(stmt).unwrap();
            p
        };
        let mut shared = Session::new(mk_prog()).backend(Backend::SharedMem);
        let mut channels = Session::new(mk_prog()).backend(Backend::Channels);
        let mut per_step = 0u64;
        let mut prev_shared = 0u64;
        let mut prev_channels = 0u64;
        for t in 0..timesteps {
            shared.run(1).unwrap();
            channels.run(1).unwrap();
            let a1 = shared.last_analyses().to_vec();
            let a2 = channels.last_analyses().to_vec();
            prop_assert_eq!(a1[0].comm.clone(), a2[0].comm.clone());
            prop_assert_eq!(
                shared.program().arrays[0].to_dense(),
                channels.program().arrays[0].to_dense()
            );
            let step_shared = shared.program().backend_bytes_sent() - prev_shared;
            let step_channels = channels.program().backend_bytes_sent() - prev_channels;
            prev_shared = shared.program().backend_bytes_sent();
            prev_channels = channels.program().backend_bytes_sent();
            // both backends drive the identical fused schedule and dirty
            // mask, so their wire accounting must agree byte for byte
            prop_assert_eq!(step_shared, step_channels);
            if t == 0 {
                per_step = step_shared;
                // cold timestep ships everything: for partitioning
                // mappings the wire is exactly the analysis
                prop_assert_eq!(per_step, a1[0].total_bytes());
            } else {
                // ghost-region reuse may only ever *shrink* a warm
                // timestep's traffic, never grow it
                prop_assert!(
                    step_shared <= per_step,
                    "warm timestep sent {} bytes > cold {}",
                    step_shared,
                    per_step
                );
            }
        }
        prop_assert_eq!(channels.program().spmd_workers_spawned(), np as u64,
            "worker fleet spawned once, reused every timestep");
        prop_assert_eq!(shared.program().spmd_workers_spawned(), 0);
    }
}

/// Deterministic acceptance check: a 2-D block stencil program produces
/// identical trajectories on both backends across remap invalidation, and
/// the Channels fleet persists across all of it.
#[test]
fn stencil_program_identical_across_backends_and_remap() {
    let n = 20i64;
    let np = 4usize;
    let mk = || {
        let mut ds = DataSpace::new(np);
        ds.declare_processors("G", IndexDomain::of_shape(&[2, 2]).unwrap()).unwrap();
        let p = ds.declare("P", IndexDomain::standard(&[(1, n), (1, n)]).unwrap()).unwrap();
        let u = ds.declare("U", IndexDomain::standard(&[(1, n), (1, n)]).unwrap()).unwrap();
        for id in [p, u] {
            ds.distribute(
                id,
                &DistributeSpec::to(vec![FormatSpec::Block, FormatSpec::Block], "G"),
            )
            .unwrap();
        }
        let mut prog = Program::new(vec![
            DistArray::new("P", ds.effective(p).unwrap(), np, 0.0),
            DistArray::from_fn("U", ds.effective(u).unwrap(), np, |i| {
                (i[0] * 100 + i[1]) as f64
            }),
        ]);
        let doms: Vec<&IndexDomain> = prog.arrays.iter().map(|a| a.domain()).collect();
        let sweep = Assignment::new(
            0,
            Section::from_triplets(vec![span(2, n - 1), span(2, n - 1)]),
            vec![
                Term::new(1, Section::from_triplets(vec![span(1, n - 2), span(2, n - 1)])),
                Term::new(1, Section::from_triplets(vec![span(3, n), span(2, n - 1)])),
            ],
            Combine::Sum,
            &doms,
        )
        .unwrap();
        prog.push(sweep).unwrap();
        prog
    };
    let mut shared = Session::new(mk()).backend(Backend::SharedMem);
    let mut channels = Session::new(mk()).backend(Backend::Channels);
    for _ in 0..3 {
        shared.run(1).unwrap();
        channels.run(1).unwrap();
        assert_eq!(
            shared.program().arrays[0].to_dense(),
            channels.program().arrays[0].to_dense()
        );
    }
    // REDISTRIBUTE U to cyclic: plans invalidate, backends still agree
    let remap_target = || {
        let mut ds = DataSpace::new(np);
        ds.declare_processors("G", IndexDomain::of_shape(&[2, 2]).unwrap()).unwrap();
        let u = ds.declare("U", IndexDomain::standard(&[(1, n), (1, n)]).unwrap()).unwrap();
        ds.distribute(
            u,
            &DistributeSpec::to(vec![FormatSpec::Cyclic(1), FormatSpec::Cyclic(2)], "G"),
        )
        .unwrap();
        ds.effective(u).unwrap()
    };
    shared.program_mut().remap(1, remap_target()).unwrap();
    channels.program_mut().remap(1, remap_target()).unwrap();
    for _ in 0..2 {
        shared.run(1).unwrap();
        channels.run(1).unwrap();
        assert_eq!(
            shared.program().arrays[0].to_dense(),
            channels.program().arrays[0].to_dense()
        );
    }
    let channels = channels.into_program();
    assert_eq!(channels.cache_misses(), 2, "one cold miss + one remap invalidation");
    assert_eq!(
        channels.spmd_workers_spawned(),
        np as u64,
        "the SPMD fleet survives plan invalidation"
    );
}
