//! The workspace's example programs, packaged as verifiable scenarios.
//!
//! Each scenario builds the [`Program`] at the heart of one of the eight
//! `examples/*.rs` files — same mappings, same statements, smaller domains
//! where the example iterates to convergence — so `hpf-lint` (and the CI
//! verification leg) statically proves the five safety properties over
//! exactly the mapping shapes the examples execute: cyclic + reversal
//! alignment, 2-D block grids, strided red/black sweeps, general-block
//! load balancing, mid-program redistribution, dynamic reallocation,
//! replication, and aliasing strided section copies.

use hpf_core::{
    AlignExpr, AlignSpec, DataSpace, DistributeSpec, EffectiveDist, FormatSpec, ProcSet,
};
use hpf_index::{span, triplet, IndexDomain, Section};
use hpf_runtime::{Assignment, Combine, DistArray, Program, Session, Term};
use std::sync::Arc;

/// A named, buildable program for the verifier to prove safe.
pub struct Scenario {
    /// Scenario name (matches the example file it mirrors).
    pub name: &'static str,
    /// One-line description of what mapping shapes it exercises.
    pub summary: &'static str,
    /// Build the program (arrays + statements, nothing executed yet).
    pub build: fn() -> Program,
}

/// All scenarios, one per example, in the examples' alphabetical order.
pub fn all() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "allocatable_dynamic",
            summary: "different-extent arrays, strided cross-array read",
            build: allocatable_dynamic,
        },
        Scenario {
            name: "directive_tour",
            summary: "replicated coefficient array (reported divergence verdict)",
            build: directive_tour,
        },
        Scenario {
            name: "dynamic_rebalance",
            summary: "BLOCK sweep, then REDISTRIBUTE to GEN_BLOCK mid-program",
            build: dynamic_rebalance,
        },
        Scenario {
            name: "load_balancing",
            summary: "GEN_BLOCK mapping balanced for a triangular workload",
            build: load_balancing,
        },
        Scenario {
            name: "quickstart",
            summary: "CYCLIC distribution with a reversal alignment",
            build: quickstart,
        },
        Scenario {
            name: "red_black_solver",
            summary: "strided red/black Gauss-Seidel sweeps over BLOCK",
            build: red_black_solver,
        },
        Scenario {
            name: "staggered_grid",
            summary: "the §8.1.1 4-term staggered-grid statement on a 2x2 mesh",
            build: staggered_grid,
        },
        Scenario {
            name: "subroutine_sections",
            summary: "CYCLIC(3) array with an aliasing strided section copy",
            build: subroutine_sections,
        },
    ]
}

/// The scenario named `name`, if any.
pub fn by_name(name: &str) -> Option<Scenario> {
    all().into_iter().find(|s| s.name == name)
}

fn full(n: i64) -> Section {
    Section::from_triplets(vec![span(1, n)])
}

/// `quickstart`: B CYCLIC over 4 processors, A(I) aligned WITH B(17-I);
/// A(1:16) = B(1:16) exercises the reversal-aligned gather.
fn quickstart() -> Program {
    let np = 4;
    let mut ds = DataSpace::new(np);
    let b = ds.declare("B", IndexDomain::of_shape(&[16]).unwrap()).unwrap();
    let a = ds.declare("A", IndexDomain::of_shape(&[16]).unwrap()).unwrap();
    ds.distribute(b, &DistributeSpec::new(vec![FormatSpec::Cyclic(1)])).unwrap();
    ds.align(a, b, &AlignSpec::with_exprs(1, vec![-AlignExpr::dummy(0) + 17])).unwrap();
    let arrays = vec![
        DistArray::from_fn("A", ds.effective(a).unwrap(), np, |i| i[0] as f64),
        DistArray::from_fn("B", ds.effective(b).unwrap(), np, |i| (i[0] * 7) as f64),
    ];
    let doms: Vec<&IndexDomain> = arrays.iter().map(|x| x.domain()).collect();
    let stmt =
        Assignment::new(0, full(16), vec![Term::new(1, full(16))], Combine::Copy, &doms)
            .unwrap();
    let mut prog = Program::new(arrays);
    prog.push(stmt).unwrap();
    prog
}

/// `staggered_grid`: the §8.1.1 statement — P over (1:N)², U over
/// (0:N, 1:N), V over (1:N, 0:N), all (BLOCK, BLOCK) on a 2×2 mesh.
fn staggered_grid() -> Program {
    const N: i64 = 8;
    let np_side = 2usize;
    let np = np_side * np_side;
    let mut ds = DataSpace::new(np);
    ds.declare_processors("G", IndexDomain::of_shape(&[np_side, np_side]).unwrap())
        .unwrap();
    let p = ds.declare("P", IndexDomain::standard(&[(1, N), (1, N)]).unwrap()).unwrap();
    let u = ds.declare("U", IndexDomain::standard(&[(0, N), (1, N)]).unwrap()).unwrap();
    let v = ds.declare("V", IndexDomain::standard(&[(1, N), (0, N)]).unwrap()).unwrap();
    for id in [p, u, v] {
        ds.distribute(
            id,
            &DistributeSpec::to(vec![FormatSpec::Block, FormatSpec::Block], "G"),
        )
        .unwrap();
    }
    let arrays = vec![
        DistArray::new("P", ds.effective(p).unwrap(), np, 0.0),
        DistArray::from_fn("U", ds.effective(u).unwrap(), np, |i| {
            (i[0] * 1000 + i[1]) as f64
        }),
        DistArray::from_fn("V", ds.effective(v).unwrap(), np, |i| {
            (i[0] + i[1] * 1000) as f64
        }),
    ];
    let doms: Vec<&IndexDomain> = arrays.iter().map(|x| x.domain()).collect();
    let stmt = Assignment::new(
        0,
        Section::from_triplets(vec![span(1, N), span(1, N)]),
        vec![
            Term::new(1, Section::from_triplets(vec![span(0, N - 1), span(1, N)])),
            Term::new(1, Section::from_triplets(vec![span(1, N), span(1, N)])),
            Term::new(2, Section::from_triplets(vec![span(1, N), span(0, N - 1)])),
            Term::new(2, Section::from_triplets(vec![span(1, N), span(1, N)])),
        ],
        Combine::Sum,
        &doms,
    )
    .unwrap();
    let mut prog = Program::new(arrays);
    prog.push(stmt).unwrap();
    prog
}

/// `red_black_solver`: the red and black strided Gauss–Seidel sweeps over
/// U(0:N+1), BLOCK-distributed — LHS-aliasing strided Average statements.
fn red_black_solver() -> Program {
    const N: i64 = 31;
    let np = 4;
    let mut ds = DataSpace::new(np);
    let u = ds.declare("U", IndexDomain::standard(&[(0, N + 1)]).unwrap()).unwrap();
    ds.distribute(u, &DistributeSpec::new(vec![FormatSpec::Block])).unwrap();
    let arrays = vec![DistArray::from_fn("U", ds.effective(u).unwrap(), np, |i| {
        if i[0] == N + 1 {
            1.0
        } else {
            0.0
        }
    })];
    let doms: Vec<&IndexDomain> = arrays.iter().map(|x| x.domain()).collect();
    let red = Assignment::new(
        0,
        Section::from_triplets(vec![triplet(2, N, 2)]),
        vec![
            Term::new(0, Section::from_triplets(vec![triplet(1, N - 1, 2)])),
            Term::new(0, Section::from_triplets(vec![triplet(3, N + 1, 2)])),
        ],
        Combine::Average,
        &doms,
    )
    .unwrap();
    let black = Assignment::new(
        0,
        Section::from_triplets(vec![triplet(1, N, 2)]),
        vec![
            Term::new(0, Section::from_triplets(vec![triplet(0, N - 1, 2)])),
            Term::new(0, Section::from_triplets(vec![triplet(2, N + 1, 2)])),
        ],
        Combine::Average,
        &doms,
    )
    .unwrap();
    let mut prog = Program::new(arrays);
    prog.push(red).unwrap();
    prog.push(black).unwrap();
    prog
}

/// `load_balancing`: a GEN_BLOCK mapping whose block sizes grow with a
/// triangular per-element workload, plus a neighbour sweep over it.
fn load_balancing() -> Program {
    let np = 4;
    let n = 40i64;
    let mut ds = DataSpace::new(np);
    let l = ds.declare("L", IndexDomain::of_shape(&[n as usize]).unwrap()).unwrap();
    ds.distribute(
        l,
        &DistributeSpec::new(vec![FormatSpec::GeneralBlockSizes(vec![16, 10, 8, 6])]),
    )
    .unwrap();
    let arrays =
        vec![DistArray::from_fn("L", ds.effective(l).unwrap(), np, |i| i[0] as f64)];
    let doms: Vec<&IndexDomain> = arrays.iter().map(|x| x.domain()).collect();
    let stmt = Assignment::new(
        0,
        Section::from_triplets(vec![span(2, n)]),
        vec![
            Term::new(0, Section::from_triplets(vec![span(1, n - 1)])),
            Term::new(0, Section::from_triplets(vec![span(2, n)])),
        ],
        Combine::Sum,
        &doms,
    )
    .unwrap();
    let mut prog = Program::new(arrays);
    prog.push(stmt).unwrap();
    prog
}

/// `dynamic_rebalance`: run a BLOCK sweep, REDISTRIBUTE to GEN_BLOCK
/// mid-program (invalidating the cached plan), leaving the verifier the
/// freshly re-inspected schedule to prove.
fn dynamic_rebalance() -> Program {
    let np = 4;
    let n = 32i64;
    let mut ds = DataSpace::new(np);
    let x = ds.declare("X", IndexDomain::of_shape(&[n as usize]).unwrap()).unwrap();
    ds.distribute(x, &DistributeSpec::new(vec![FormatSpec::Block])).unwrap();
    let arrays =
        vec![DistArray::from_fn("X", ds.effective(x).unwrap(), np, |i| i[0] as f64)];
    let doms: Vec<&IndexDomain> = arrays.iter().map(|x| x.domain()).collect();
    let stmt = Assignment::new(
        0,
        Section::from_triplets(vec![span(2, n)]),
        vec![Term::new(0, Section::from_triplets(vec![span(1, n - 1)]))],
        Combine::Copy,
        &doms,
    )
    .unwrap();
    let mut prog = Program::new(arrays);
    prog.push(stmt).unwrap();
    let mut sess = Session::new(prog);
    sess.run(1).expect("pre-rebalance sweep");
    let mut prog = sess.into_program();
    // the rebalance: skewed GEN_BLOCK, new mapping allocation
    let mut ds2 = DataSpace::new(np);
    let x2 = ds2.declare("X", IndexDomain::of_shape(&[n as usize]).unwrap()).unwrap();
    ds2.distribute(
        x2,
        &DistributeSpec::new(vec![FormatSpec::GeneralBlockSizes(vec![14, 10, 5, 3])]),
    )
    .unwrap();
    prog.remap(0, ds2.effective(x2).unwrap()).expect("redistribute");
    prog
}

/// `allocatable_dynamic`: arrays of different extents — a CYCLIC(2)
/// 12-element result reading a strided section of a BLOCK 24-element
/// source.
fn allocatable_dynamic() -> Program {
    let np = 4;
    let mut ds = DataSpace::new(np);
    let a = ds.declare("A", IndexDomain::of_shape(&[12]).unwrap()).unwrap();
    let b = ds.declare("B", IndexDomain::of_shape(&[24]).unwrap()).unwrap();
    ds.distribute(a, &DistributeSpec::new(vec![FormatSpec::Cyclic(2)])).unwrap();
    ds.distribute(b, &DistributeSpec::new(vec![FormatSpec::Block])).unwrap();
    let arrays = vec![
        DistArray::from_fn("A", ds.effective(a).unwrap(), np, |i| i[0] as f64),
        DistArray::from_fn("B", ds.effective(b).unwrap(), np, |i| (i[0] * 3) as f64),
    ];
    let doms: Vec<&IndexDomain> = arrays.iter().map(|x| x.domain()).collect();
    let stmt = Assignment::new(
        0,
        full(12),
        vec![Term::new(1, Section::from_triplets(vec![triplet(2, 24, 2)]))],
        Combine::Copy,
        &doms,
    )
    .unwrap();
    let mut prog = Program::new(arrays);
    prog.push(stmt).unwrap();
    prog
}

/// `directive_tour`: a replicated coefficient array on the RHS — the one
/// scenario whose conservation verdict is the *expected*
/// replicated-divergence (reported by `hpf-lint`, not a failure).
fn directive_tour() -> Program {
    let np = 4;
    let n = 16i64;
    let dom = IndexDomain::of_shape(&[n as usize]).unwrap();
    let rep = Arc::new(EffectiveDist::Replicated {
        domain: dom,
        procs: ProcSet::all(np),
    });
    let mut ds = DataSpace::new(np);
    let a = ds.declare("A", IndexDomain::of_shape(&[n as usize]).unwrap()).unwrap();
    let b = ds.declare("B", IndexDomain::of_shape(&[n as usize]).unwrap()).unwrap();
    ds.distribute(a, &DistributeSpec::new(vec![FormatSpec::BlockBalanced])).unwrap();
    ds.distribute(b, &DistributeSpec::new(vec![FormatSpec::Cyclic(3)])).unwrap();
    let arrays = vec![
        DistArray::from_fn("A", ds.effective(a).unwrap(), np, |i| i[0] as f64),
        DistArray::from_fn("B", ds.effective(b).unwrap(), np, |i| (i[0] * 2) as f64),
        DistArray::from_fn("C", rep, np, |i| (i[0] * 5) as f64),
    ];
    let doms: Vec<&IndexDomain> = arrays.iter().map(|x| x.domain()).collect();
    let stmt = Assignment::new(
        0,
        full(n),
        vec![Term::new(1, full(n)), Term::new(2, full(n))],
        Combine::Sum,
        &doms,
    )
    .unwrap();
    let mut prog = Program::new(arrays);
    prog.push(stmt).unwrap();
    prog
}

/// `subroutine_sections`: a CYCLIC(3) array copied onto itself through
/// shifted strided sections — the section-passing shapes of §7.
fn subroutine_sections() -> Program {
    let np = 4;
    let n = 100i64;
    let mut ds = DataSpace::new(np);
    let a = ds.declare("A", IndexDomain::of_shape(&[n as usize]).unwrap()).unwrap();
    ds.distribute(a, &DistributeSpec::new(vec![FormatSpec::Cyclic(3)])).unwrap();
    let arrays =
        vec![DistArray::from_fn("A", ds.effective(a).unwrap(), np, |i| i[0] as f64)];
    let doms: Vec<&IndexDomain> = arrays.iter().map(|x| x.domain()).collect();
    let stmt = Assignment::new(
        0,
        Section::from_triplets(vec![triplet(2, 96, 2)]),
        vec![Term::new(0, Section::from_triplets(vec![triplet(1, 95, 2)]))],
        Combine::Copy,
        &doms,
    )
    .unwrap();
    let mut prog = Program::new(arrays);
    prog.push(stmt).unwrap();
    prog
}
