//! Plan caching: amortize inspection across timesteps.
//!
//! Iterative solvers (red–black sweeps, stencil timesteps) execute the
//! *same* statements over the *same* mappings thousands of times. A
//! [`PlanCache`] keys each statement's compiled [`ExecPlan`] by the
//! statement's structure plus the [`MappingId`] of every involved array,
//! so a repeated statement replays its schedule — no re-validation, no
//! re-inspection, no re-running the region-algebraic communication
//! analysis — while a `REDISTRIBUTE`/`REALIGN` (which produces new mapping
//! allocations) invalidates exactly the affected entries.

use crate::array::DistArray;
use crate::assign::Assignment;
use crate::plan::ExecPlan;
use hpf_core::HpfError;
use std::collections::HashMap;
use std::sync::Arc;

/// A cache of compiled execution plans, keyed by statement shape and
/// mapping identity.
///
/// At most one entry is kept per distinct statement (statements hash and
/// compare structurally): when a statement's mappings change (an array was
/// remapped), the stale plan is replaced in place, so the cache never
/// grows beyond the program's statement count.
#[derive(Debug, Clone, Default)]
pub struct PlanCache {
    entries: HashMap<Assignment, Arc<ExecPlan>>,
    hits: u64,
    misses: u64,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// The plan for `stmt` over `arrays`: a cached replay if the statement
    /// was seen before under the same mapping allocations, otherwise a
    /// fresh inspection (cached for next time).
    pub fn plan_for(
        &mut self,
        arrays: &[DistArray<f64>],
        stmt: &Assignment,
    ) -> Result<Arc<ExecPlan>, HpfError> {
        if let Some(plan) = self.entries.get(stmt) {
            if plan.is_valid_for(arrays) {
                self.hits += 1;
                return Ok(plan.clone());
            }
        }
        self.misses += 1;
        let plan = Arc::new(ExecPlan::inspect(arrays, stmt)?);
        self.entries.insert(stmt.clone(), plan.clone());
        Ok(plan)
    }

    /// Cached-replay count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Fresh-inspection count (cold misses plus remap invalidations).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of plans currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff no plan is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop every cached plan (counters are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::{Combine, Term};
    use hpf_core::{DataSpace, DistributeSpec, FormatSpec};
    use hpf_index::{span, IndexDomain, Section};

    fn arrays(n: usize, np: usize, fmt_b: FormatSpec) -> Vec<DistArray<f64>> {
        let mut ds = DataSpace::new(np);
        let a = ds.declare("A", IndexDomain::of_shape(&[n]).unwrap()).unwrap();
        let b = ds.declare("B", IndexDomain::of_shape(&[n]).unwrap()).unwrap();
        ds.distribute(a, &DistributeSpec::new(vec![FormatSpec::Block])).unwrap();
        ds.distribute(b, &DistributeSpec::new(vec![fmt_b])).unwrap();
        vec![
            DistArray::from_fn("A", ds.effective(a).unwrap(), np, |i| i[0] as f64),
            DistArray::from_fn("B", ds.effective(b).unwrap(), np, |i| (i[0] * 2) as f64),
        ]
    }

    fn copy_stmt(n: i64, arrays: &[DistArray<f64>]) -> Assignment {
        let doms: Vec<&IndexDomain> = arrays.iter().map(|a| a.domain()).collect();
        Assignment::new(
            0,
            Section::from_triplets(vec![span(1, n)]),
            vec![Term::new(1, Section::from_triplets(vec![span(1, n)]))],
            Combine::Copy,
            &doms,
        )
        .unwrap()
    }

    #[test]
    fn repeat_statement_hits() {
        let mut cache = PlanCache::new();
        let arrs = arrays(32, 4, FormatSpec::Cyclic(1));
        let stmt = copy_stmt(32, &arrs);
        let p1 = cache.plan_for(&arrs, &stmt).unwrap();
        let p2 = cache.plan_for(&arrs, &stmt).unwrap();
        assert!(Arc::ptr_eq(&p1, &p2), "replay must reuse the compiled plan");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn remap_invalidates_in_place() {
        let mut cache = PlanCache::new();
        let mut arrs = arrays(32, 4, FormatSpec::Cyclic(1));
        let stmt = copy_stmt(32, &arrs);
        let p1 = cache.plan_for(&arrs, &stmt).unwrap();
        // remap B: a new mapping allocation → the entry is stale
        arrs[1] = arrays(32, 4, FormatSpec::Block).into_iter().nth(1).unwrap();
        let p2 = cache.plan_for(&arrs, &stmt).unwrap();
        assert!(!Arc::ptr_eq(&p1, &p2));
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        // replaced, not accumulated
        assert_eq!(cache.len(), 1);
        // and the fresh plan is hit on the next replay
        cache.plan_for(&arrs, &stmt).unwrap();
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn distinct_statements_coexist() {
        let mut cache = PlanCache::new();
        let arrs = arrays(32, 4, FormatSpec::Cyclic(1));
        let s1 = copy_stmt(32, &arrs);
        let s2 = copy_stmt(16, &arrs);
        cache.plan_for(&arrs, &s1).unwrap();
        cache.plan_for(&arrs, &s2).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.misses(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }
}
