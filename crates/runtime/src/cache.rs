//! Plan caching: amortize inspection across timesteps.
//!
//! Iterative solvers (red–black sweeps, stencil timesteps) execute the
//! *same* statements over the *same* mappings thousands of times. A
//! [`PlanCache`] keys each statement's compiled [`ExecPlan`] by the
//! statement's structure plus the [`MappingId`](hpf_core::MappingId) of
//! every involved array, so a repeated statement replays its schedule — no
//! re-validation, no re-inspection, no re-running the region-algebraic
//! communication analysis — while a `REDISTRIBUTE`/`REALIGN` (which
//! produces new mapping allocations) invalidates exactly the affected
//! entries.
//!
//! Each entry also keeps a [`PlanWorkspace`] sized for its plan, so
//! [`PlanCache::replay_seq`] performs **zero heap allocations** on a warm
//! hit: one cache lookup, block-copy pack into the preallocated buffers,
//! slice-kernel compute, and an `Arc`-handle return of the frozen
//! analysis. [`PlanCache::replay_par`] reuses the same buffers but pays
//! the scoped-thread spawn cost (and its allocations) per replay.

use crate::array::DistArray;
use crate::assign::Assignment;
use crate::backend::{ExchangeBackend, ExchangeError, SharedMemBackend};
use crate::commsets::CommAnalysis;
use crate::fuse::{execute_fused_par, BufferDomain, FusedState, FusionStats, ProgramPlan};
use crate::plan::ExecPlan;
use crate::spmd::ChannelsBackend;
use crate::workspace::{FusedWorkspace, PlanWorkspace};
use hpf_core::HpfError;
use std::collections::HashMap;
use std::sync::Arc;

/// A cached plan plus its preallocated replay scratch.
#[derive(Debug, Clone)]
struct Entry {
    plan: Arc<ExecPlan>,
    ws: PlanWorkspace,
}

/// The cached fused timestep: the statement sequence it was compiled
/// from (the cache key — structural equality, compared without
/// allocating), the compiled [`ProgramPlan`], its dirty-tracking replay
/// state, and the preallocated fused scratch.
#[derive(Debug, Clone)]
struct FusedEntry {
    stmts: Vec<Assignment>,
    plan: Arc<ProgramPlan>,
    state: FusedState,
    ws: FusedWorkspace,
}

/// Which executor a fused timestep runs on — the fused analogue of
/// choosing a [`Backend`](crate::Backend) / thread count for the
/// per-statement paths.
#[derive(Debug)]
pub enum FusedTarget<'a> {
    /// The shared-address-space backend (zero-allocation warm replays).
    Shared(&'a mut SharedMemBackend),
    /// Scoped threads, at most this many (for thread caps below the
    /// simulated processor count).
    Par(usize),
    /// The message-passing SPMD worker fleet.
    Channels(&'a mut ChannelsBackend),
}

/// Statically verify a plan at the moment it enters the cache — the five
/// properties of [`crate::verify::verify_plan`], asserted hard: a plan
/// that cannot be proven safe must never be handed to a replay loop.
///
/// Runs in every debug build and, behind the `verify` feature, in release
/// too. Verification happens only at insertion (cold miss or remap
/// invalidation), so the warm replay path is untouched — `verify` off has
/// zero warm-replay overhead by construction.
#[cfg(any(debug_assertions, feature = "verify"))]
fn verify_inserted(arrays: &[DistArray<f64>], stmt: &Assignment, plan: &ExecPlan) {
    let report = crate::verify::verify_plan(arrays, stmt, plan);
    assert!(
        report.is_clean(),
        "statically invalid plan inserted into the cache:\n{report}"
    );
}

#[cfg(not(any(debug_assertions, feature = "verify")))]
fn verify_inserted(_: &[DistArray<f64>], _: &Assignment, _: &ExecPlan) {}

/// Statically verify a fused plan at the moment it enters the cache —
/// the fused properties of [`crate::verify::verify_program_plan`]
/// (superstep hazard freedom, segment conservation across coalescing,
/// pack-phase soundness, dirty-flag consistency), asserted hard under the
/// same gating as [`verify_inserted`].
#[cfg(any(debug_assertions, feature = "verify"))]
fn verify_fused_inserted(
    arrays: &[DistArray<f64>],
    stmts: &[Assignment],
    plan: &ProgramPlan,
) {
    let report = crate::verify::verify_program_plan(arrays, stmts, plan);
    assert!(
        report.is_clean(),
        "statically invalid fused plan inserted into the cache:\n{report}"
    );
}

#[cfg(not(any(debug_assertions, feature = "verify")))]
fn verify_fused_inserted(_: &[DistArray<f64>], _: &[Assignment], _: &ProgramPlan) {}

/// A cache of compiled execution plans, keyed by statement shape and
/// mapping identity.
///
/// At most one entry is kept per distinct statement (statements hash and
/// compare structurally): when a statement's mappings change (an array was
/// remapped), the stale plan is replaced in place — without re-cloning the
/// statement key — so the cache never grows beyond the program's statement
/// count.
#[derive(Debug, Clone, Default)]
pub struct PlanCache {
    entries: HashMap<Assignment, Entry>,
    fused: Option<FusedEntry>,
    hits: u64,
    misses: u64,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// The plan for `stmt` over `arrays`: a cached replay if the statement
    /// was seen before under the same mapping allocations, otherwise a
    /// fresh inspection (cached for next time).
    pub fn plan_for(
        &mut self,
        arrays: &[DistArray<f64>],
        stmt: &Assignment,
    ) -> Result<Arc<ExecPlan>, HpfError> {
        if let Some(e) = self.entries.get_mut(stmt) {
            if e.plan.is_valid_for(arrays) {
                self.hits += 1;
                return Ok(e.plan.clone());
            }
            // stale: re-inspect and replace in place — no Assignment
            // clone (the key is owned by the map) and no workspace
            // reallocation when the new plan's buffer shape is unchanged
            // (the common remap-rebalance pattern)
            self.misses += 1;
            let plan = Arc::new(ExecPlan::inspect(arrays, stmt)?);
            verify_inserted(arrays, stmt, &plan);
            e.ws.ensure(&plan);
            e.plan = plan.clone();
            return Ok(plan);
        }
        self.misses += 1;
        let plan = Arc::new(ExecPlan::inspect(arrays, stmt)?);
        verify_inserted(arrays, stmt, &plan);
        let ws = PlanWorkspace::for_plan(&plan);
        self.entries.insert(stmt.clone(), Entry { plan: plan.clone(), ws });
        Ok(plan)
    }

    /// Execute `stmt` sequentially through the cache: resolve (or inspect)
    /// the plan, replay it into the entry's own workspace, and return the
    /// frozen analysis as a shared handle. On a warm hit this performs no
    /// heap allocation at all — and exactly one cache lookup.
    pub fn replay_seq(
        &mut self,
        arrays: &mut [DistArray<f64>],
        stmt: &Assignment,
    ) -> Result<Arc<CommAnalysis>, HpfError> {
        self.replay_with(arrays, stmt, |plan, arrays, ws| {
            plan.execute_seq_with(arrays, ws);
            Ok(())
        })
    }

    /// [`PlanCache::replay_seq`] with parallel pack and compute phases
    /// spread over at most `threads` OS threads (capped at the simulated
    /// processor count). The workspace is reused, but the per-replay
    /// thread spawns do allocate — the zero-allocation contract is the
    /// sequential path's.
    pub fn replay_par(
        &mut self,
        arrays: &mut [DistArray<f64>],
        stmt: &Assignment,
        threads: usize,
    ) -> Result<Arc<CommAnalysis>, HpfError> {
        self.replay_with(arrays, stmt, |plan, arrays, ws| {
            plan.execute_par_with(arrays, threads, ws);
            Ok(())
        })
    }

    /// Execute `stmt` through the cache on an explicit
    /// [`ExchangeBackend`]: resolve (or inspect) the plan, run one
    /// superstep on the backend with the entry's own workspace, and
    /// return the frozen analysis as a shared handle. With the
    /// `SharedMem` backend a warm hit stays allocation-free (the entry's
    /// message staging buffers are preallocated); the `Channels` backend
    /// reuses its persistent workers across hits. An exchange failure
    /// (worker death, lost or damaged message) surfaces as
    /// [`HpfError::Exchange`]; the cached plan stays valid — only the
    /// array *data* needs restoring before a replay.
    pub fn replay_on(
        &mut self,
        arrays: &mut [DistArray<f64>],
        stmt: &Assignment,
        backend: &mut dyn ExchangeBackend,
    ) -> Result<Arc<CommAnalysis>, HpfError> {
        self.replay_with(arrays, stmt, |plan, arrays, ws| backend.step(plan, arrays, ws))
    }

    /// Shared replay driver: one lookup on the warm path; cold and stale
    /// statements fall through to [`PlanCache::plan_for`] for inspection.
    fn replay_with(
        &mut self,
        arrays: &mut [DistArray<f64>],
        stmt: &Assignment,
        mut exec: impl FnMut(
            &Arc<ExecPlan>,
            &mut [DistArray<f64>],
            &mut PlanWorkspace,
        ) -> Result<(), ExchangeError>,
    ) -> Result<Arc<CommAnalysis>, HpfError> {
        if let Some(e) = self.entries.get_mut(stmt) {
            if e.plan.is_valid_for(arrays) {
                self.hits += 1;
                exec(&e.plan, arrays, &mut e.ws)?;
                return Ok(e.plan.shared_analysis());
            }
        }
        self.plan_for(arrays, stmt)?; // cold or stale: inspect + cache
        let e = self.entries.get_mut(stmt).expect("plan_for caches the entry");
        exec(&e.plan, arrays, &mut e.ws)?;
        Ok(e.plan.shared_analysis())
    }

    /// Execute one whole timestep — every statement of `stmts`, in
    /// program order — through the cached fused [`ProgramPlan`] on the
    /// chosen [`FusedTarget`], compiling (and statically verifying) the
    /// fused plan first if the statement sequence changed or any involved
    /// array was remapped.
    ///
    /// Counter semantics match the per-statement paths exactly: a warm
    /// fused timestep counts one hit per statement; a rebuild resolves
    /// each constituent plan through [`PlanCache::plan_for`], which
    /// charges hits for statements whose per-statement plans are still
    /// valid and misses for cold or invalidated ones.
    ///
    /// Warm timesteps on the `Shared` target perform **zero heap
    /// allocations**: the dirty bits, effective-send mask, fused staging
    /// buffers, and per-statement operand buffers are all reused in
    /// place, and the elements physically staged are asserted equal to
    /// the mask's prediction.
    pub fn replay_fused_on(
        &mut self,
        arrays: &mut [DistArray<f64>],
        stmts: &[Assignment],
        target: FusedTarget<'_>,
    ) -> Result<Arc<ProgramPlan>, HpfError> {
        let warm = self
            .fused
            .as_ref()
            .is_some_and(|e| e.stmts == stmts && e.plan.is_valid_for(arrays));
        if warm {
            self.hits += stmts.len() as u64;
        } else {
            let plans = stmts
                .iter()
                .map(|s| self.plan_for(arrays, s))
                .collect::<Result<Vec<_>, _>>()?;
            let plan = Arc::new(ProgramPlan::compile(stmts, plans));
            verify_fused_inserted(arrays, stmts, &plan);
            let ws = FusedWorkspace::for_plan(&plan);
            let mut state = FusedState::new(&plan, arrays);
            if let Some(old) = &self.fused {
                state.carry_counters(&old.state);
            }
            self.fused = Some(FusedEntry { stmts: stmts.to_vec(), plan, state, ws });
        }
        let FusedEntry { plan, state, ws, .. } =
            self.fused.as_mut().expect("fused entry was just ensured");
        match target {
            FusedTarget::Shared(backend) => {
                state.begin_timestep(plan, arrays, BufferDomain::Workspace);
                let staged = match backend.step_fused(plan, arrays, state, ws) {
                    Ok(staged) => staged,
                    Err(e) => {
                        // the timestep is torn: the mask's assumptions
                        // about receiver-side ghost data no longer hold
                        state.poison();
                        return Err(e.into());
                    }
                };
                assert_eq!(
                    staged,
                    state.last_sent(),
                    "staged ghost elements diverged from the dirty-tracking mask"
                );
            }
            FusedTarget::Par(threads) => {
                state.begin_timestep(plan, arrays, BufferDomain::Workspace);
                let staged = execute_fused_par(plan, arrays, state, ws, threads);
                assert_eq!(
                    staged,
                    state.last_sent(),
                    "staged ghost elements diverged from the dirty-tracking mask"
                );
            }
            FusedTarget::Channels(backend) => {
                // worker fleet first: a respawn (processor-count change
                // elsewhere) empties the workers' persistent buffers, and
                // the generation stamp forces an all-dirty mask
                let generation = backend.prepare(plan.np());
                state.begin_timestep(plan, arrays, BufferDomain::Channels(generation));
                if let Err(e) = backend.step_fused(
                    plan,
                    arrays,
                    state.eff_arc(),
                    state.eff_version(),
                    state.last_sent(),
                ) {
                    // a failed fused timestep leaves the fleet torn down
                    // (its ghost buffers are gone) and the arrays partial:
                    // distrust every dirty assumption until data is
                    // restored and the next begin_timestep re-derives them
                    state.poison();
                    return Err(e.into());
                }
            }
        }
        state.finish_timestep(plan, arrays);
        Ok(plan.clone())
    }

    /// Observability snapshot of the fused path: DAG shape of the current
    /// fused plan plus lifetime-cumulative reuse counters (carried across
    /// rebuilds). Zeroed before the first fused timestep.
    pub fn fusion_stats(&self) -> FusionStats {
        match &self.fused {
            None => FusionStats::default(),
            Some(e) => FusionStats {
                statements: e.stmts.len(),
                supersteps: e.plan.supersteps().len(),
                messages_before: e.plan.messages_before(),
                messages_after: e.plan.messages_after(),
                fused_timesteps: e.state.timesteps(),
                ghost_elements_sent: e.state.sent_elements(),
                ghost_elements_avoided: e.state.avoided_elements(),
            },
        }
    }

    /// Cached-replay count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Fresh-inspection count (cold misses plus remap invalidations).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of plans currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff no plan is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes held by the compressed schedules of every cached plan (see
    /// [`ExecPlan::schedule_bytes`]) — what the run-length compression
    /// makes observable.
    pub fn schedule_bytes(&self) -> usize {
        self.entries.values().map(|e| e.plan.schedule_bytes()).sum()
    }

    /// Total `f64` elements preallocated across all cached workspaces.
    pub fn workspace_elements(&self) -> usize {
        self.entries.values().map(|e| e.ws.buffer_elements()).sum()
    }

    /// Drop every cached plan, including the fused program plan
    /// (counters are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.fused = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::{Combine, Term};
    use hpf_core::{DataSpace, DistributeSpec, FormatSpec};
    use hpf_index::{span, IndexDomain, Section};

    fn arrays(n: usize, np: usize, fmt_b: FormatSpec) -> Vec<DistArray<f64>> {
        let mut ds = DataSpace::new(np);
        let a = ds.declare("A", IndexDomain::of_shape(&[n]).unwrap()).unwrap();
        let b = ds.declare("B", IndexDomain::of_shape(&[n]).unwrap()).unwrap();
        ds.distribute(a, &DistributeSpec::new(vec![FormatSpec::Block])).unwrap();
        ds.distribute(b, &DistributeSpec::new(vec![fmt_b])).unwrap();
        vec![
            DistArray::from_fn("A", ds.effective(a).unwrap(), np, |i| i[0] as f64),
            DistArray::from_fn("B", ds.effective(b).unwrap(), np, |i| (i[0] * 2) as f64),
        ]
    }

    fn copy_stmt(n: i64, arrays: &[DistArray<f64>]) -> Assignment {
        let doms: Vec<&IndexDomain> = arrays.iter().map(|a| a.domain()).collect();
        Assignment::new(
            0,
            Section::from_triplets(vec![span(1, n)]),
            vec![Term::new(1, Section::from_triplets(vec![span(1, n)]))],
            Combine::Copy,
            &doms,
        )
        .unwrap()
    }

    #[test]
    fn repeat_statement_hits() {
        let mut cache = PlanCache::new();
        let arrs = arrays(32, 4, FormatSpec::Cyclic(1));
        let stmt = copy_stmt(32, &arrs);
        let p1 = cache.plan_for(&arrs, &stmt).unwrap();
        let p2 = cache.plan_for(&arrs, &stmt).unwrap();
        assert!(Arc::ptr_eq(&p1, &p2), "replay must reuse the compiled plan");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn remap_invalidates_in_place() {
        let mut cache = PlanCache::new();
        let mut arrs = arrays(32, 4, FormatSpec::Cyclic(1));
        let stmt = copy_stmt(32, &arrs);
        let p1 = cache.plan_for(&arrs, &stmt).unwrap();
        // remap B: a new mapping allocation → the entry is stale
        arrs[1] = arrays(32, 4, FormatSpec::Block).into_iter().nth(1).unwrap();
        let p2 = cache.plan_for(&arrs, &stmt).unwrap();
        assert!(!Arc::ptr_eq(&p1, &p2));
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        // replaced, not accumulated
        assert_eq!(cache.len(), 1);
        // and the fresh plan is hit on the next replay
        cache.plan_for(&arrs, &stmt).unwrap();
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn distinct_statements_coexist() {
        let mut cache = PlanCache::new();
        let arrs = arrays(32, 4, FormatSpec::Cyclic(1));
        let s1 = copy_stmt(32, &arrs);
        let s2 = copy_stmt(16, &arrs);
        cache.plan_for(&arrs, &s1).unwrap();
        cache.plan_for(&arrs, &s2).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.misses(), 2);
        assert!(cache.schedule_bytes() > 0);
        assert_eq!(cache.workspace_elements(), 32 + 16);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.schedule_bytes(), 0);
    }

    #[test]
    fn replay_through_cache_matches_reference() {
        let mut cache = PlanCache::new();
        let mut seq = arrays(40, 4, FormatSpec::Cyclic(3));
        let mut par = seq.clone();
        let stmt = copy_stmt(40, &seq);
        for _ in 0..3 {
            let expect = crate::exec::dense_reference(&seq, &stmt);
            let a1 = cache.replay_seq(&mut seq, &stmt).unwrap();
            let a2 = cache.replay_par(&mut par, &stmt, 8).unwrap();
            assert_eq!(seq[0].to_dense(), expect);
            assert_eq!(par[0].to_dense(), expect);
            assert!(Arc::ptr_eq(&a1, &a2), "both replays share the frozen analysis");
        }
        assert_eq!(cache.misses(), 1, "one inspection for both executors");
        assert_eq!(cache.hits(), 5);
    }
}
