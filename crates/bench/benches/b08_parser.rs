//! Frontend throughput: lexing+parsing+elaborating the §6 program.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hpf_frontend::{parse, Elaborator};

const SRC: &str = r#"
      REAL, ALLOCATABLE :: A(:,:), B(:,:)
      REAL, ALLOCATABLE :: C(:), D(:)
!HPF$ PROCESSORS PR(8)
!HPF$ PROCESSORS GRID(2,4)
!HPF$ DISTRIBUTE A(CYCLIC,BLOCK) TO GRID
!HPF$ DISTRIBUTE (BLOCK) :: C,D
!HPF$ DYNAMIC B,C
      READ 6,M,N
      ALLOCATE(A(N*M,N*M))
      ALLOCATE(B(N,N))
!HPF$ REALIGN B(:,:) WITH A(M::M,1::M)
      ALLOCATE(C(10000), D(10000))
!HPF$ REDISTRIBUTE C(CYCLIC) TO PR
      END
"#;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("frontend");
    g.bench_function("parse_section6", |b| b.iter(|| black_box(parse(black_box(SRC)).unwrap())));
    g.bench_function("elaborate_section6", |b| {
        let e = Elaborator::new(8).with_input("M", 3).with_input("N", 8);
        b.iter(|| black_box(e.run(black_box(SRC)).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
