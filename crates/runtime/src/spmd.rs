//! A true message-passing SPMD executor: the [`ChannelsBackend`].
//!
//! Each simulated processor runs as a **long-lived worker thread** that
//! owns only its local shards (one buffer per array) plus its ghost
//! regions for the statement being executed. Data moves between workers
//! exclusively as packed messages over channels — no worker ever reads
//! another worker's buffer, which is what finally *validates* that the
//! compiled schedules (and the paper's statically-computed communication
//! sets behind them) are sufficient for a real distributed-memory
//! machine.
//!
//! One superstep ([`ChannelsBackend::step`] via the
//! [`ExchangeBackend`] trait):
//!
//! 1. the driver moves each processor's local buffers *by value* into its
//!    worker (an ownership handoff — pointer moves, no copying);
//! 2. every worker packs its local gather runs from its own shards, then
//!    packs **one message per outgoing pair** from the plan's
//!    [`MessagePlan`] and ships it; spent message buffers are recycled
//!    through a shared free-list, so warm steps reuse wire buffers
//!    instead of growing the heap;
//! 3. every worker receives exactly the messages the frozen schedule says
//!    it must (checking each physically received buffer's length against
//!    its schedule — a damaged payload, or sender and receiver executing
//!    different plans, surfaces as a typed [`ExchangeError`] before any
//!    garbage is unpacked), unpacks them into its packed operand buffers
//!    (kept across steps, per worker), and computes into its own LHS
//!    shard;
//! 4. the driver collects the shards back and reinstalls them. The
//!    schedule itself was already cross-checked pair for pair against the
//!    independent region-algebraic [`CommAnalysis`](crate::CommAnalysis)
//!    at inspect time (see [`ExecPlan::inspect`]).
//!
//! Workers persist across supersteps (and across plans — any plan with
//! the same processor count reuses them), so iterated programs pay thread
//! spawn cost **once**, not per timestep: this is what
//! [`crate::Program::run_parallel`] replays through once warm.
//!
//! ## Failure handling
//!
//! A superstep that cannot complete — a worker died (crash or injected
//! kill), a message was lost or arrived damaged, the fleet wedged — no
//! longer aborts the process. The worker that *detects* the problem
//! reports it to the driver as a typed [`ExchangeError`] (a worker whose
//! peer vanished reports that peer's rank; the driver's completion scan
//! pins silent deaths by polling thread handles); the driver then raises
//! the shutdown flag so blocked peers abandon, drains whatever completed
//! shards still come back during a short grace window, tears the fleet
//! down, and returns the error. The next superstep respawns a fresh
//! fleet automatically — the spawn-generation bump tells the fused
//! dirty-tracking state its workers' ghost buffers are gone (see
//! [`ChannelsBackend::prepare`]) — and the caller restores array state
//! from a checkpoint and replays (see [`crate::ckpt::run_trajectory`]).
//! A dead worker takes the shards in its custody with it, which is
//! exactly what a crashed distributed-memory node does: recovery is
//! restore-and-replay, never patch-up.

use crate::array::DistArray;
use crate::backend::{ExchangeBackend, ExchangeError};
use crate::fault::{FaultPlan, FaultSwitch, SendAction};
use crate::fuse::ProgramPlan;
use crate::plan::{compute_proc, ExecPlan};
use crate::workspace::PlanWorkspace;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// A work order for a worker.
#[derive(Debug)]
enum Cmd {
    /// One per-statement BSP superstep.
    Step(Step),
    /// One whole fused timestep (every superstep of a [`ProgramPlan`]).
    Fused(FusedStep),
}

impl Cmd {
    /// The backend superstep counter stamped on this work order (workers
    /// use it to stamp errors and to match injected faults).
    fn step(&self) -> u64 {
        match self {
            Cmd::Step(s) => s.step,
            Cmd::Fused(s) => s.step,
        }
    }
}

/// One superstep's work order for a worker: the compiled plan plus the
/// worker's own shards (local buffer of every array), moved in by value.
#[derive(Debug)]
struct Step {
    plan: Arc<ExecPlan>,
    shards: Vec<Vec<f64>>,
    /// Backend superstep counter at dispatch.
    step: u64,
}

/// One fused timestep's work order: the fused plan, the timestep's
/// effective-send mask (shared by every worker, so sender and receiver
/// agree on which units ride the wire), and the worker's shards.
#[derive(Debug)]
struct FusedStep {
    plan: Arc<ProgramPlan>,
    eff: Arc<Vec<bool>>,
    /// Mask rebuild stamp from [`crate::fuse::FusedState`] — workers
    /// re-derive their per-pair effective totals only when it moves.
    eff_version: u64,
    shards: Vec<Vec<f64>>,
    /// Backend superstep counter at dispatch.
    step: u64,
}

/// A worker's completed superstep: its shards moved back to the driver,
/// or the typed failure it detected (its own shards are then lost with
/// it, exactly as a crashed node's would be).
#[derive(Debug)]
struct Done {
    proc: usize,
    result: Result<Vec<Vec<f64>>, ExchangeError>,
    /// Wall-nanoseconds this worker spent in its compute kernels during
    /// the step — the measured per-processor load sample the adaptive
    /// controller consumes (see [`ExchangeBackend::rank_compute_ns`]).
    compute_ns: u64,
}

/// Identifies an unfused message, which the receiver matches to its
/// schedule by sender (one pair per sender per statement). Fused
/// messages instead carry their [`FusedPair`](crate::FusedPair) index.
const UNFUSED: u32 = u32::MAX;

/// A packed message on the wire.
#[derive(Debug)]
struct Msg {
    from: u32,
    /// [`UNFUSED`] for a per-statement message; otherwise the index of
    /// the fused pair the payload belongs to.
    pair: u32,
    data: Vec<f64>,
}

/// Shared free-list of spent message buffers: receivers return unpacked
/// buffers here, senders take them back before allocating fresh ones —
/// the message-passing analogue of persistent MPI requests.
type BufferPool = Arc<Mutex<Vec<Vec<f64>>>>;

/// Lock the buffer pool, recovering from a poisoned `Mutex`. The pool
/// holds only spent wire buffers (plain `Vec<f64>`s with no invariant
/// between them), so the state behind a poisoned lock is always valid —
/// recovering via [`PoisonError::into_inner`] keeps one worker panic
/// (or an injected [`crate::Fault::PoisonPool`]) from cascading into
/// every later pool access fleet-wide.
fn pool_lock(pool: &BufferPool) -> MutexGuard<'_, Vec<Vec<f64>>> {
    pool.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Deliberately poison the buffer-pool `Mutex` for an injected
/// [`crate::Fault::PoisonPool`]: panic while holding the guard, catching
/// the unwind so only the lock — not the worker — is damaged. The panic
/// message lands on stderr by design; it is the observable trace that
/// the fault fired.
fn poison_pool(pool: &BufferPool) {
    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _guard = pool_lock(pool);
        panic!("injected: poisoning the SPMD buffer pool");
    }));
}

/// How long the driver waits for worker supersteps by default before
/// concluding the fleet is wedged (a lost message or a schedule bug, not
/// back-pressure: channels are unbounded, so a correct superstep cannot
/// deadlock). Tunable per backend via
/// [`ChannelsBackend::set_step_timeout`].
const WORKER_TIMEOUT: Duration = Duration::from_secs(120);

/// After a failure is detected, how long the driver keeps draining
/// completions so surviving workers' shards are reinstalled rather than
/// dropped (blocked workers notice the shutdown flag within their 50ms
/// poll slice, so this comfortably covers the stragglers).
const DRAIN_GRACE: Duration = Duration::from_millis(250);

/// Per-worker fused-replay scratch, persistent across timesteps: the
/// per-statement packed operand buffers ghost-region reuse relies on
/// (`packed[s][t]` mirrors the shared path's `FusedWorkspace`), keyed by
/// the plan's allocation so a new fused plan rebuilds them (the driver
/// starts every new plan all-dirty, so the fresh zeros never reach a
/// kernel), plus per-timestep arrival bookkeeping.
#[derive(Debug, Default)]
struct FusedScratch {
    key: usize,
    packed: Vec<Vec<Vec<f64>>>,
    arrived: Vec<bool>,
    eff_elems: Vec<usize>,
    /// `(plan key, mask version)` the cached `eff_elems` were computed
    /// for — steady warm timesteps reuse them without rescanning the
    /// fused segments.
    eff_key: (usize, u64),
}

/// Everything a worker thread needs besides the work order itself —
/// bundled so the superstep bodies stay parameter-light.
struct WorkerCtx {
    me: usize,
    inbox: Receiver<Msg>,
    peers: Vec<Sender<Msg>>,
    pool: BufferPool,
    shutdown: Arc<AtomicBool>,
    faults: Option<Arc<FaultSwitch>>,
}

impl WorkerCtx {
    /// Consult the fault switch for this outgoing message.
    fn send_action(&self, receiver: u32, step: u64) -> SendAction {
        self.faults
            .as_ref()
            .map_or(SendAction::Deliver, |sw| sw.on_send(self.me as u32, receiver, step))
    }

    /// Receive one message, abandoning on fleet shutdown (`None`).
    fn recv(&self) -> Option<Msg> {
        loop {
            match self.inbox.recv_timeout(Duration::from_millis(50)) {
                Ok(m) => return Some(m),
                Err(_) if self.shutdown.load(Ordering::Relaxed) => return None,
                Err(_) => continue,
            }
        }
    }

    /// Pack `data` for `receiver`, apply any injected message fault, and
    /// ship. `Ok(false)` means the superstep must be abandoned (fleet
    /// shutting down); an `Err` is a failure this worker detected (a
    /// vanished peer is reported by rank — its inbox died with it).
    fn ship(&self, receiver: u32, pair: u32, mut data: Vec<f64>, step: u64)
        -> Result<bool, ExchangeError>
    {
        match self.send_action(receiver, step) {
            SendAction::Drop => {
                pool_lock(&self.pool).push(data);
                return Ok(true); // silently lost: the receiver will wedge
            }
            SendAction::Corrupt => {
                data.pop();
            }
            SendAction::Delay(ms) => std::thread::sleep(Duration::from_millis(ms)),
            SendAction::Deliver => {}
        }
        if self.peers[receiver as usize]
            .send(Msg { from: self.me as u32, pair, data })
            .is_err()
        {
            if self.shutdown.load(Ordering::Relaxed) {
                return Ok(false); // orderly teardown, not a death
            }
            return Err(ExchangeError::WorkerDied { rank: receiver, step });
        }
        Ok(true)
    }
}

/// One unfused BSP superstep on a worker (see the module docs). Returns
/// `Ok(false)` iff the superstep was abandoned on shutdown — the caller
/// must then exit without sending a `Done`. An `Err` is a typed failure
/// this worker detected; the caller reports it to the driver.
fn run_unfused_step(
    ctx: &WorkerCtx,
    step: u64,
    plan: &Arc<ExecPlan>,
    shards: &mut [Vec<f64>],
    packed: &mut Vec<Vec<f64>>,
    compute_ns: &mut u64,
) -> Result<bool, ExchangeError> {
    let me = ctx.me;
    let pp = &plan.per_proc()[me];
    let me32 = me as u32;
    if packed.len() != pp.terms.len()
        || packed.iter().zip(&pp.terms).any(|(b, t)| b.len() != t.elements)
    {
        *packed = pp.terms.iter().map(|t| vec![0.0f64; t.elements]).collect();
    }
    // phase 1: pack local runs from this worker's own shards
    for (ts, buf) in pp.terms.iter().zip(packed.iter_mut()) {
        for r in ts.runs.iter().filter(|r| r.src == me32) {
            buf[r.dst_off..r.dst_off + r.len]
                .copy_from_slice(&shards[ts.array][r.src_off..r.src_off + r.len]);
        }
    }
    // phase 2a: pack and ship one message per outgoing pair
    let msgs = plan.message_plan();
    for pair in msgs.pairs().iter().filter(|p| p.sender == me32) {
        let mut data = pool_lock(&ctx.pool).pop().unwrap_or_default();
        data.clear();
        data.reserve(pair.elements);
        for seg in &pair.segments {
            data.extend_from_slice(&shards[seg.array][seg.src_off..seg.src_off + seg.len]);
        }
        if !ctx.ship(pair.receiver, UNFUSED, data, step)? {
            return Ok(false);
        }
    }
    // phase 2b: receive exactly the messages the schedule promises.
    // Bounded waits: if the fleet is shutting down (backend dropped,
    // or unwinding after a peer died), abandon the superstep instead
    // of blocking forever on a message that will never arrive. The
    // shutdown flag is a dedicated signal — probing the command
    // channel here could swallow a queued command.
    let expected = msgs.pairs().iter().filter(|p| p.receiver == me32).count();
    for _ in 0..expected {
        let Some(Msg { from, data, .. }) = ctx.recv() else {
            return Ok(false); // shutdown mid-superstep
        };
        let Some(pair) = msgs.pair(from, me32) else {
            return Err(ExchangeError::Misrouted { rank: me32, step });
        };
        // a physically received buffer whose length disagrees with the
        // receiver's schedule means the payload was damaged in flight or
        // sender and receiver executed different plans — report it typed,
        // never unpack garbage
        if data.len() != pair.elements {
            return Err(ExchangeError::CorruptMessage {
                sender: from,
                receiver: me32,
                step,
                got: data.len(),
                expected: pair.elements,
            });
        }
        let mut off = 0usize;
        for seg in &pair.segments {
            packed[seg.term][seg.dst_off..seg.dst_off + seg.len]
                .copy_from_slice(&data[off..off + seg.len]);
            off += seg.len;
        }
        pool_lock(&ctx.pool).push(data);
    }
    // phase 3: compute into this worker's own LHS shard (timed — the
    // per-processor load sample reported back with the completion)
    let t0 = Instant::now();
    compute_proc(pp, &mut shards[plan.lhs()], packed, plan.combine());
    *compute_ns += t0.elapsed().as_nanos() as u64;
    Ok(true)
}

/// One whole fused timestep on a worker: run the [`ProgramPlan`]'s
/// supersteps **without global barriers** — pack the superstep's local
/// runs, ship every outgoing fused pair *hoisted* to this phase (only its
/// effective segments; an all-clean pair sends nothing and the receiver,
/// holding the same mask, skips it too), unpack whatever has arrived
/// (messages for later supersteps are welcome early — remote and local
/// runs fill disjoint buffer positions), block only on the arrivals this
/// superstep's kernels actually read, then compute. A pair packed at an
/// earlier phase than its home superstep is therefore in flight while
/// the intervening supersteps compute — the pack/exchange-overlap leg of
/// the fusion design. Returns `Ok(false)` iff abandoned on shutdown;
/// `Err` is a detected failure.
#[allow(clippy::too_many_arguments)]
fn run_fused_step(
    ctx: &WorkerCtx,
    step: u64,
    plan: &Arc<ProgramPlan>,
    eff: &[bool],
    eff_version: u64,
    shards: &mut [Vec<f64>],
    scratch: &mut FusedScratch,
    compute_ns: &mut u64,
) -> Result<bool, ExchangeError> {
    let me = ctx.me;
    let me32 = me as u32;
    let key = Arc::as_ptr(plan) as usize;
    if scratch.key != key {
        scratch.packed = plan
            .plans()
            .iter()
            .map(|p| {
                p.per_proc()[me].terms.iter().map(|t| vec![0.0f64; t.elements]).collect()
            })
            .collect();
        scratch.key = key;
    }
    scratch.arrived.clear();
    scratch.arrived.resize(plan.pairs().len(), false);
    if scratch.eff_key != (key, eff_version) {
        scratch.eff_elems.clear();
        scratch
            .eff_elems
            .extend((0..plan.pairs().len()).map(|k| plan.pair_eff_elements(k, eff)));
        scratch.eff_key = (key, eff_version);
    }

    for phase in 0..plan.supersteps().len() {
        // pack this superstep's local runs from this worker's own shards
        for &s in &plan.supersteps()[phase].stmts {
            let pp = &plan.plans()[s].per_proc()[me];
            for (ts, buf) in pp.terms.iter().zip(scratch.packed[s].iter_mut()) {
                for r in ts.runs.iter().filter(|r| r.src == me32) {
                    buf[r.dst_off..r.dst_off + r.len]
                        .copy_from_slice(&shards[ts.array][r.src_off..r.src_off + r.len]);
                }
            }
        }
        // ship every outgoing pair hoisted to this phase
        for (k, pair) in plan.pairs().iter().enumerate() {
            if pair.pack_phase != phase || pair.sender != me32 || scratch.eff_elems[k] == 0 {
                continue;
            }
            let mut data = pool_lock(&ctx.pool).pop().unwrap_or_default();
            data.clear();
            data.reserve(scratch.eff_elems[k]);
            for seg in pair.segments.iter().filter(|s| eff[s.unit]) {
                data.extend_from_slice(&shards[seg.array][seg.src_off..seg.src_off + seg.len]);
            }
            if !ctx.ship(pair.receiver, k as u32, data, step)? {
                return Ok(false);
            }
        }
        // block until every pair this superstep's kernels read has
        // arrived, unpacking arrivals (from any phase) as they come in
        loop {
            let waiting = plan.pairs().iter().enumerate().any(|(k, p)| {
                p.superstep == phase
                    && p.receiver == me32
                    && scratch.eff_elems[k] > 0
                    && !scratch.arrived[k]
            });
            if !waiting {
                break;
            }
            let Some(Msg { from, pair: k, data }) = ctx.recv() else {
                return Ok(false); // shutdown mid-timestep
            };
            let k = k as usize;
            // an unfused message during a fused timestep, or a pair
            // delivered to a worker whose schedule doesn't receive it,
            // is a routing failure, not corruption
            if k == UNFUSED as usize {
                return Err(ExchangeError::Misrouted { rank: me32, step });
            }
            let pair = &plan.pairs()[k];
            if (pair.sender, pair.receiver) != (from, me32) {
                return Err(ExchangeError::Misrouted { rank: me32, step });
            }
            // sender and receiver hold the same mask, so a length
            // mismatch means the payload was damaged in flight or they
            // executed different fused plans
            if data.len() != scratch.eff_elems[k] {
                return Err(ExchangeError::CorruptMessage {
                    sender: from,
                    receiver: me32,
                    step,
                    got: data.len(),
                    expected: scratch.eff_elems[k],
                });
            }
            let mut off = 0usize;
            for seg in pair.segments.iter().filter(|s| eff[s.unit]) {
                scratch.packed[seg.stmt][seg.term][seg.dst_off..seg.dst_off + seg.len]
                    .copy_from_slice(&data[off..off + seg.len]);
                off += seg.len;
            }
            scratch.arrived[k] = true;
            pool_lock(&ctx.pool).push(data);
        }
        // compute this superstep's statements into this worker's shards
        // (timed — the per-processor load sample reported back with the
        // completion)
        let t0 = Instant::now();
        for &s in &plan.supersteps()[phase].stmts {
            let sp = &plan.plans()[s];
            compute_proc(
                &sp.per_proc()[me],
                &mut shards[sp.lhs()],
                &scratch.packed[s],
                sp.combine(),
            );
        }
        *compute_ns += t0.elapsed().as_nanos() as u64;
    }
    Ok(true)
}

fn worker_loop(ctx: WorkerCtx, cmds: Receiver<Cmd>, done: Sender<Done>) {
    // per-worker packed operand buffers, reused across supersteps
    let mut packed: Vec<Vec<f64>> = Vec::new();
    let mut fused = FusedScratch::default();
    while let Ok(cmd) = cmds.recv() {
        let step = cmd.step();
        if let Some(sw) = &ctx.faults {
            if sw.kill(ctx.me as u32, step) {
                // injected crash: die silently, taking the shards just
                // handed over with us — the driver's completion scan must
                // detect the death, exactly as it would a real one
                return;
            }
            if sw.poison(ctx.me as u32, step) {
                poison_pool(&ctx.pool);
            }
        }
        let mut compute_ns = 0u64;
        let result = match cmd {
            Cmd::Step(Step { plan, mut shards, step }) => {
                match run_unfused_step(
                    &ctx, step, &plan, &mut shards, &mut packed, &mut compute_ns,
                ) {
                    Ok(true) => Ok(shards),
                    Ok(false) => return, // shutdown mid-superstep: no Done
                    Err(e) => Err(e),
                }
            }
            Cmd::Fused(FusedStep { plan, eff, eff_version, mut shards, step }) => {
                match run_fused_step(
                    &ctx, step, &plan, &eff, eff_version, &mut shards, &mut fused,
                    &mut compute_ns,
                ) {
                    Ok(true) => Ok(shards),
                    Ok(false) => return,
                    Err(e) => Err(e),
                }
            }
        };
        let failed = result.is_err();
        if done.send(Done { proc: ctx.me, result, compute_ns }).is_err() || failed {
            // driver gone, or this worker just reported a failure: its
            // packed buffers may hold a half-unpacked step, and the
            // driver tears the fleet down on any failure anyway
            return;
        }
    }
}

/// The message-passing SPMD backend (see module docs). Workers are
/// spawned lazily on the first superstep and persist until the backend is
/// dropped; a plan over a different processor count replaces the fleet,
/// as does the first superstep after a failed one.
pub struct ChannelsBackend {
    np: usize,
    cmd_txs: Vec<Sender<Cmd>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    done_rx: Option<Receiver<Done>>,
    pool: BufferPool,
    /// Set (before the command channels drop) when the fleet is being
    /// torn down, so a worker blocked mid-superstep on its inbox abandons
    /// instead of waiting for a message that will never arrive.
    shutdown: Arc<AtomicBool>,
    /// Armed fault injection, cloned into every worker at spawn.
    faults: Option<Arc<FaultSwitch>>,
    timeout: Duration,
    bytes_sent: u64,
    workers_spawned: u64,
    steps: u64,
    /// Per-rank compute nanoseconds reported by the workers for the last
    /// completed step (see [`ExchangeBackend::rank_compute_ns`]).
    rank_ns: Vec<u64>,
}

impl Default for ChannelsBackend {
    fn default() -> Self {
        ChannelsBackend::new()
    }
}

impl std::fmt::Debug for ChannelsBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelsBackend")
            .field("workers", &self.cmd_txs.len())
            .field("workers_spawned", &self.workers_spawned)
            .field("steps", &self.steps)
            .field("bytes_sent", &self.bytes_sent)
            .finish_non_exhaustive()
    }
}

impl ChannelsBackend {
    /// A backend with no workers yet (they spawn on the first superstep).
    pub fn new() -> Self {
        ChannelsBackend {
            np: 0,
            cmd_txs: Vec::new(),
            handles: Vec::new(),
            done_rx: None,
            pool: Arc::new(Mutex::new(Vec::new())),
            shutdown: Arc::new(AtomicBool::new(false)),
            faults: None,
            timeout: WORKER_TIMEOUT,
            bytes_sent: 0,
            workers_spawned: 0,
            steps: 0,
            rank_ns: Vec::new(),
        }
    }

    /// Worker threads spawned over the backend's lifetime — stays at the
    /// processor count across warm supersteps (the persistent-worker
    /// contract `zero_alloc_replay` pins). Grows by `np` on every fleet
    /// respawn: a different processor count, or recovery after a failed
    /// superstep.
    pub fn workers_spawned(&self) -> u64 {
        self.workers_spawned
    }

    /// Supersteps *completed* so far (a failed superstep is not counted —
    /// it never happened as far as the trajectory is concerned, and a
    /// replay of the same timestep reuses its step number with the
    /// one-shot fault already spent).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Live worker count (0 before the first superstep, and 0 again
    /// after a failure tears the fleet down).
    pub fn workers(&self) -> usize {
        self.cmd_txs.len()
    }

    /// Replace the wedge-detection timeout (default 120s): how long the
    /// driver waits without any worker completing before declaring the
    /// superstep [`ExchangeError::Wedged`]. Fault-injection tests dial
    /// this down so a dropped message is detected in milliseconds.
    pub fn set_step_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout.max(Duration::from_millis(1));
    }

    fn ensure_workers(&mut self, np: usize) {
        if self.np == np && !self.cmd_txs.is_empty() {
            return;
        }
        self.shutdown();
        self.shutdown = Arc::new(AtomicBool::new(false));
        let (done_tx, done_rx) = unbounded();
        let mut inbox_rxs = Vec::with_capacity(np);
        let mut peer_txs = Vec::with_capacity(np);
        for _ in 0..np {
            let (tx, rx) = unbounded();
            peer_txs.push(tx);
            inbox_rxs.push(rx);
        }
        for (me, inbox) in inbox_rxs.into_iter().enumerate() {
            let (cmd_tx, cmd_rx) = unbounded();
            let ctx = WorkerCtx {
                me,
                inbox,
                peers: peer_txs.clone(),
                pool: self.pool.clone(),
                shutdown: self.shutdown.clone(),
                faults: self.faults.clone(),
            };
            let done = done_tx.clone();
            self.handles.push(
                std::thread::Builder::new()
                    .name(format!("hpf-spmd-{}", me + 1))
                    .spawn(move || worker_loop(ctx, cmd_rx, done))
                    .expect("spawn SPMD worker"),
            );
            self.cmd_txs.push(cmd_tx);
        }
        self.done_rx = Some(done_rx);
        self.np = np;
        self.workers_spawned += np as u64;
    }

    /// Ensure a fleet of `np` workers is running and return the spawn
    /// generation (cumulative workers spawned). The fused replay path
    /// calls this *before* computing its effective-send mask: a changed
    /// generation means the workers' persistent packed buffers are gone
    /// (processor-count change *or* post-failure respawn), so every ghost
    /// unit must be re-sent (see [`crate::fuse::FusedState`]).
    pub(crate) fn prepare(&mut self, np: usize) -> u64 {
        self.ensure_workers(np);
        self.workers_spawned
    }

    /// Execute one whole fused timestep across the worker fleet: hand
    /// each worker its shards plus the shared effective-send mask,
    /// collect the shards back, and account the masked wire traffic
    /// (`wire_elements` is the mask's element count — sender-side
    /// measured lengths are checked against it inside every worker).
    /// Counts one step per timestep.
    pub(crate) fn step_fused(
        &mut self,
        plan: &Arc<ProgramPlan>,
        arrays: &mut [DistArray<f64>],
        eff: Arc<Vec<bool>>,
        eff_version: u64,
        wire_elements: u64,
    ) -> Result<(), ExchangeError> {
        assert!(plan.is_valid_for(arrays), "stale fused plan: an involved array was remapped");
        let np = plan.np();
        self.ensure_workers(np);
        let step = self.steps;
        for (p, cmd) in self.cmd_txs.iter().enumerate() {
            let shards: Vec<Vec<f64>> =
                arrays.iter_mut().map(|a| a.take_local(p)).collect();
            // a send can only fail if the worker already died; the
            // completion scan below pins and reports the death
            let _ = cmd.send(Cmd::Fused(FusedStep {
                plan: plan.clone(),
                eff: eff.clone(),
                eff_version,
                shards,
                step,
            }));
        }
        self.collect_done(arrays, np)?;
        self.bytes_sent += wire_elements * std::mem::size_of::<f64>() as u64;
        self.steps += 1;
        Ok(())
    }

    /// Collect `np` completed work orders and reinstall their shards.
    ///
    /// On the first sign of failure — a worker-reported [`ExchangeError`],
    /// a thread found dead without a completion, a disconnected completion
    /// channel, or no progress within the step timeout — the driver raises
    /// the shutdown flag (so blocked peers abandon), keeps draining
    /// completions for a short grace window to reinstall surviving
    /// shards, tears the fleet down, and returns the failure. The arrays
    /// then hold a *partial* timestep (dead workers' shards are gone) and
    /// must be reloaded from a checkpoint — see [`crate::ckpt`].
    fn collect_done(
        &mut self,
        arrays: &mut [DistArray<f64>],
        np: usize,
    ) -> Result<(), ExchangeError> {
        let step = self.steps;
        let mut failure: Option<ExchangeError> = None;
        // moved out so the completion loop can fill it while `done_rx`
        // borrows `self`; reused across steps (no warm-path allocation)
        let mut rank_ns = std::mem::take(&mut self.rank_ns);
        if rank_ns.len() != np {
            rank_ns.resize(np, 0);
        }
        rank_ns.fill(0);
        {
            let done_rx = self.done_rx.as_ref().expect("workers are running");
            let deadline = Instant::now() + self.timeout;
            let mut grace: Option<Instant> = None;
            let mut returned = vec![false; np];
            let mut outstanding = np;
            let fail = |e: ExchangeError,
                            failure: &mut Option<ExchangeError>,
                            grace: &mut Option<Instant>| {
                if failure.is_none() {
                    *failure = Some(e);
                    self.shutdown.store(true, Ordering::Relaxed);
                    *grace = Some(Instant::now() + DRAIN_GRACE);
                }
            };
            while outstanding > 0 {
                // poll in short slices so a crashed worker is reported
                // promptly by name instead of stalling the full timeout
                match done_rx.recv_timeout(Duration::from_millis(20)) {
                    Ok(Done { proc, result, compute_ns }) => {
                        returned[proc] = true;
                        outstanding -= 1;
                        rank_ns[proc] = compute_ns;
                        match result {
                            Ok(shards) => {
                                for (a, buf) in arrays.iter_mut().zip(shards) {
                                    a.put_local(proc, buf);
                                }
                            }
                            Err(e) => fail(e, &mut failure, &mut grace),
                        }
                    }
                    Err(RecvTimeoutError::Disconnected) => {
                        fail(ExchangeError::FleetDied { step }, &mut failure, &mut grace);
                        break;
                    }
                    Err(RecvTimeoutError::Timeout) => {
                        // a finished handle while its Done is outstanding
                        // means the worker died silently (idle workers
                        // block on their command channel, they never exit)
                        if let Some(dead) = self
                            .handles
                            .iter()
                            .position(|h| h.is_finished())
                            .filter(|&i| !returned[i])
                        {
                            fail(
                                ExchangeError::WorkerDied { rank: dead as u32, step },
                                &mut failure,
                                &mut grace,
                            );
                        } else if failure.is_none() && Instant::now() >= deadline {
                            fail(
                                ExchangeError::Wedged {
                                    step,
                                    waited_ms: self.timeout.as_millis() as u64,
                                },
                                &mut failure,
                                &mut grace,
                            );
                        }
                        if grace.is_some_and(|g| Instant::now() >= g) {
                            break; // stragglers abandoned without a Done
                        }
                    }
                }
            }
        }
        self.rank_ns = rank_ns;
        match failure {
            None => Ok(()),
            Some(e) => {
                // tear the failed fleet down; the next superstep respawns
                // a fresh one (and bumps the spawn generation, which the
                // fused dirty-tracking state watches)
                self.shutdown();
                Err(e)
            }
        }
    }

    /// Stop and join the worker fleet: raise the shutdown flag (so a
    /// worker blocked mid-superstep abandons), then drop the command
    /// channels (ending each idle worker's loop) and join.
    fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        self.cmd_txs.clear();
        self.done_rx = None;
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        self.np = 0;
    }
}

impl Drop for ChannelsBackend {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl ExchangeBackend for ChannelsBackend {
    fn name(&self) -> &'static str {
        "channels"
    }

    /// One SPMD superstep. The [`PlanWorkspace`] is unused — each worker
    /// keeps its own packed operand buffers — but accepted so backends are
    /// interchangeable behind the trait.
    fn step(
        &mut self,
        plan: &Arc<ExecPlan>,
        arrays: &mut [DistArray<f64>],
        _ws: &mut PlanWorkspace,
    ) -> Result<(), ExchangeError> {
        assert!(plan.is_valid_for(arrays), "stale plan: an involved array was remapped");
        let np = plan.per_proc().len();
        self.ensure_workers(np);
        let step = self.steps;
        // ownership handoff: every worker gets exactly its own shards
        for (p, cmd) in self.cmd_txs.iter().enumerate() {
            let shards: Vec<Vec<f64>> =
                arrays.iter_mut().map(|a| a.take_local(p)).collect();
            let _ = cmd.send(Cmd::Step(Step { plan: plan.clone(), shards, step }));
        }
        self.collect_done(arrays, np)?;
        // schedule ≡ analysis was already cross-checked at inspect time
        // (ExecPlan::inspect); the wire accounting here is the schedule's
        self.bytes_sent += plan.message_plan().wire_bytes();
        self.steps += 1;
        Ok(())
    }

    fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    fn inject(&mut self, plan: FaultPlan) {
        self.faults = Some(Arc::new(FaultSwitch::arm(plan)));
        if !self.cmd_txs.is_empty() {
            // the running fleet was spawned without the switch: replace
            // it so every worker holds the armed plan
            self.shutdown();
        }
    }

    fn faults_fired(&self) -> usize {
        self.faults.as_ref().map_or(0, |s| s.fired())
    }

    fn rank_compute_ns(&self) -> &[u64] {
        &self.rank_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::{Assignment, Combine, Term};
    use crate::exec::dense_reference;
    use hpf_core::{DataSpace, DistributeSpec, FormatSpec};
    use hpf_index::{span, IndexDomain, Section};

    fn setup(n: usize, np: usize, fmts: &[FormatSpec]) -> Vec<DistArray<f64>> {
        let mut ds = DataSpace::new(np);
        let mut out = Vec::new();
        for (k, f) in fmts.iter().enumerate() {
            let name = format!("A{k}");
            let id = ds.declare(&name, IndexDomain::of_shape(&[n]).unwrap()).unwrap();
            ds.distribute(id, &DistributeSpec::new(vec![f.clone()])).unwrap();
            out.push(DistArray::from_fn(
                &name,
                ds.effective(id).unwrap(),
                np,
                |i| (i[0] * (k as i64 + 3) - 7) as f64,
            ));
        }
        out
    }

    fn shift_stmt(n: i64, arrays: &[DistArray<f64>]) -> Assignment {
        let doms: Vec<&IndexDomain> = arrays.iter().map(|a| a.domain()).collect();
        Assignment::new(
            0,
            Section::from_triplets(vec![span(2, n)]),
            vec![Term::new(1, Section::from_triplets(vec![span(1, n - 1)]))],
            Combine::Copy,
            &doms,
        )
        .unwrap()
    }

    #[test]
    fn channels_matches_reference_and_counts_bytes() {
        let mut arrays = setup(48, 4, &[FormatSpec::Block, FormatSpec::Cyclic(3)]);
        let stmt = shift_stmt(48, &arrays);
        let plan = Arc::new(ExecPlan::inspect(&arrays, &stmt).unwrap());
        let mut ws = PlanWorkspace::new();
        let mut backend = ChannelsBackend::new();
        for step in 1..=4u64 {
            let expect = dense_reference(&arrays, &stmt);
            backend.step(&plan, &mut arrays, &mut ws).unwrap();
            assert_eq!(arrays[0].to_dense(), expect, "step {step}");
            assert_eq!(backend.bytes_sent(), step * plan.message_plan().wire_bytes());
        }
        assert_eq!(backend.steps(), 4);
        assert_eq!(backend.workers(), 4);
        assert_eq!(backend.workers_spawned(), 4, "workers persist across steps");
    }

    #[test]
    fn different_processor_count_respawns_fleet() {
        let mut backend = ChannelsBackend::new();
        let mut ws = PlanWorkspace::new();
        let mut a4 = setup(32, 4, &[FormatSpec::Block, FormatSpec::Block]);
        let s4 = shift_stmt(32, &a4);
        let p4 = Arc::new(ExecPlan::inspect(&a4, &s4).unwrap());
        backend.step(&p4, &mut a4, &mut ws).unwrap();
        assert_eq!(backend.workers(), 4);
        let mut a3 = setup(32, 3, &[FormatSpec::Cyclic(1), FormatSpec::Block]);
        let s3 = shift_stmt(32, &a3);
        let p3 = Arc::new(ExecPlan::inspect(&a3, &s3).unwrap());
        let expect = dense_reference(&a3, &s3);
        backend.step(&p3, &mut a3, &mut ws).unwrap();
        assert_eq!(a3[0].to_dense(), expect);
        assert_eq!(backend.workers(), 3);
        assert_eq!(backend.workers_spawned(), 7, "4 then 3");
        // and back on the first plan the fleet respawns again
        backend.step(&p4, &mut a4, &mut ws).unwrap();
        assert_eq!(backend.workers_spawned(), 11);
    }

    #[test]
    fn aliasing_shift_is_bsp_safe_over_channels() {
        // A(2:16) = A(1:15): every worker ships its messages before
        // computing, so receivers see pre-assignment values
        let mut arrays = setup(16, 4, &[FormatSpec::Block]);
        let doms: Vec<&IndexDomain> = arrays.iter().map(|a| a.domain()).collect();
        let stmt = Assignment::new(
            0,
            Section::from_triplets(vec![span(2, 16)]),
            vec![Term::new(0, Section::from_triplets(vec![span(1, 15)]))],
            Combine::Copy,
            &doms,
        )
        .unwrap();
        let plan = Arc::new(ExecPlan::inspect(&arrays, &stmt).unwrap());
        let expect = dense_reference(&arrays, &stmt);
        ChannelsBackend::new()
            .step(&plan, &mut arrays, &mut PlanWorkspace::new())
            .unwrap();
        assert_eq!(arrays[0].to_dense(), expect);
    }

    /// In the shift statement's schedule over block mappings, worker 3 is
    /// a pure receiver (pairs are p→p+1), so killing it pins the death
    /// deterministically: worker 2's send fails (rank 3's inbox died) and
    /// the driver's handle scan sees rank 3 finished without a Done.
    #[test]
    fn injected_kill_surfaces_typed_error_and_replay_recovers() {
        let mut arrays = setup(48, 4, &[FormatSpec::Block, FormatSpec::Block]);
        let stmt = shift_stmt(48, &arrays);
        let plan = Arc::new(ExecPlan::inspect(&arrays, &stmt).unwrap());
        let mut ws = PlanWorkspace::new();
        let mut backend = ChannelsBackend::new();
        backend.inject(FaultPlan::parse("kill:rank=3,step=1").unwrap());
        backend.step(&plan, &mut arrays, &mut ws).unwrap(); // step 0
        let ckpt = arrays.clone(); // stand-in for a real checkpoint
        let expect = dense_reference(&arrays, &stmt);
        let err = backend.step(&plan, &mut arrays, &mut ws).unwrap_err();
        assert_eq!(err, ExchangeError::WorkerDied { rank: 3, step: 1 });
        assert_eq!(err.rank(), Some(3));
        assert_eq!(backend.workers(), 0, "failed fleet must be torn down");
        assert_eq!(backend.steps(), 1, "a failed superstep never happened");
        assert_eq!(backend.faults_fired(), 1);
        // recovery: restore shards, replay — the one-shot fault is spent,
        // the fleet respawns on its own, and the answer matches
        arrays = ckpt;
        backend.step(&plan, &mut arrays, &mut ws).unwrap();
        assert_eq!(arrays[0].to_dense(), expect);
        assert_eq!(backend.workers(), 4);
        assert_eq!(backend.workers_spawned(), 8, "one respawn after the kill");
        assert_eq!(backend.faults_fired(), 1, "replay runs clean");
    }

    #[test]
    fn injected_drop_wedges_and_times_out() {
        let mut arrays = setup(48, 4, &[FormatSpec::Block, FormatSpec::Block]);
        let stmt = shift_stmt(48, &arrays);
        let plan = Arc::new(ExecPlan::inspect(&arrays, &stmt).unwrap());
        let mut ws = PlanWorkspace::new();
        let mut backend = ChannelsBackend::new();
        backend.set_step_timeout(Duration::from_millis(300));
        backend.inject(FaultPlan::parse("drop:from=2,to=3,step=0").unwrap());
        let err = backend.step(&plan, &mut arrays, &mut ws).unwrap_err();
        assert_eq!(err, ExchangeError::Wedged { step: 0, waited_ms: 300 });
        assert_eq!(err.rank(), None, "a lost message pins no rank");
        assert_eq!(backend.workers(), 0);
    }

    #[test]
    fn injected_corruption_is_detected_before_unpacking() {
        let mut arrays = setup(48, 4, &[FormatSpec::Block, FormatSpec::Block]);
        let stmt = shift_stmt(48, &arrays);
        let plan = Arc::new(ExecPlan::inspect(&arrays, &stmt).unwrap());
        let expected = plan.message_plan().pair(1, 2).unwrap().elements;
        let mut ws = PlanWorkspace::new();
        let mut backend = ChannelsBackend::new();
        backend.inject(FaultPlan::parse("corrupt:from=1,to=2,step=0").unwrap());
        let err = backend.step(&plan, &mut arrays, &mut ws).unwrap_err();
        assert_eq!(
            err,
            ExchangeError::CorruptMessage {
                sender: 1,
                receiver: 2,
                step: 0,
                got: expected - 1,
                expected,
            }
        );
        assert_eq!(err.rank(), Some(2), "corruption is pinned to the receiver");
    }

    #[test]
    fn injected_delay_and_pool_poison_do_not_fail_the_step() {
        // a delayed message is a slow link, and a poisoned pool lock is
        // recovered via into_inner — both steps must still complete and
        // match the reference (the poison recovery is satellite #1: one
        // fault stays one fault)
        let mut arrays = setup(48, 4, &[FormatSpec::Block, FormatSpec::Cyclic(3)]);
        let stmt = shift_stmt(48, &arrays);
        let plan = Arc::new(ExecPlan::inspect(&arrays, &stmt).unwrap());
        let mut ws = PlanWorkspace::new();
        let mut backend = ChannelsBackend::new();
        backend.inject(
            FaultPlan::parse("delay:from=0,to=1,step=0,ms=30; poison:rank=2,step=1")
                .unwrap(),
        );
        for _ in 0..3 {
            let expect = dense_reference(&arrays, &stmt);
            backend.step(&plan, &mut arrays, &mut ws).unwrap();
            assert_eq!(arrays[0].to_dense(), expect);
        }
        assert_eq!(backend.steps(), 3);
        assert_eq!(backend.faults_fired(), 2);
        assert_eq!(backend.workers_spawned(), 4, "no respawn: nothing failed");
    }
}
