//! Microbench — the regular-section algebra that powers every
//! communication set: triplet intersection (CRT), rect intersection
//! volumes, and affine images.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hpf_index::{span, triplet, Rect};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("section_algebra");
    let a = triplet(3, 3_000_000, 7);
    let b = triplet(10, 2_999_999, 12);
    g.bench_function("triplet_intersect_crt", |bch| {
        bch.iter(|| black_box(black_box(a).intersect(black_box(&b))))
    });
    let r1 = Rect::new(vec![span(1, 4096), triplet(1, 8192, 2)]);
    let r2 = Rect::new(vec![span(2048, 6144), triplet(3, 8190, 3)]);
    g.bench_function("rect_intersection_volume", |bch| {
        bch.iter(|| black_box(black_box(&r1).intersection_volume(black_box(&r2))))
    });
    g.bench_function("rect_affine_image", |bch| {
        bch.iter(|| black_box(black_box(&r1).affine_image(&[(2, -1), (3, 5)]).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
