//! Offline shim for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this crate implements
//! the slice of criterion's API that the `b01`–`b11` bench targets use:
//! `Criterion`, `benchmark_group`/`bench_function`/`bench_with_input`,
//! `Bencher::{iter, iter_batched}`, `BenchmarkId`, `BatchSize`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is deliberately lightweight: each benchmark is warmed up
//! briefly, then timed over a bounded wall-clock budget, and the mean
//! time per iteration is printed. That keeps `cargo test` (which runs
//! `harness = false` bench targets in test mode) fast while still giving
//! `cargo bench` meaningful relative numbers. When the binary is invoked
//! with `--test` (what cargo passes in test mode) every benchmark body is
//! executed exactly once, mirroring real criterion's smoke-test behavior.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// An opaque identity function that prevents the optimizer from deleting
/// the benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. The shim times routine calls
/// individually regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("sort", 1024)` → `sort/1024`.
    pub fn new<S: fmt::Display, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// An id with no function name, only a parameter.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Anything accepted as a benchmark name.
pub trait IntoBenchmarkId {
    /// Render to the printed identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The timing context handed to each benchmark closure.
pub struct Bencher {
    /// Wall-clock budget for the measurement loop.
    budget: Duration,
    /// When true, run the body exactly once (cargo test smoke mode).
    smoke: bool,
    /// (iterations, total time) recorded by the last `iter*` call.
    result: Option<(u64, Duration)>,
}

impl Bencher {
    /// Time a routine over repeated calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.smoke {
            black_box(routine());
            self.result = Some((1, Duration::ZERO));
            return;
        }
        // warm-up + calibration: one call to make sure it terminates
        let start = Instant::now();
        black_box(routine());
        let first = start.elapsed();
        let mut iters: u64 = 1;
        let mut total = first;
        while total < self.budget && iters < 1_000_000 {
            let t = Instant::now();
            black_box(routine());
            total += t.elapsed();
            iters += 1;
        }
        self.result = Some((iters, total));
    }

    /// Time a routine whose per-call input comes from an untimed setup.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.smoke {
            let input = setup();
            black_box(routine(input));
            self.result = Some((1, Duration::ZERO));
            return;
        }
        let mut iters: u64 = 0;
        let mut total = Duration::ZERO;
        while (total < self.budget && iters < 1_000_000) || iters == 0 {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            total += t.elapsed();
            iters += 1;
        }
        self.result = Some((iters, total));
    }
}

fn run_one(label: &str, smoke: bool, budget: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { budget, smoke, result: None };
    f(&mut b);
    match b.result {
        Some((iters, total)) if !smoke && iters > 0 => {
            let per = total.as_nanos() / iters as u128;
            println!("bench {label:<40} {per:>12} ns/iter ({iters} iters)");
        }
        _ => println!("bench {label:<40} ok (test mode)"),
    }
}

/// The benchmark manager (a pale but API-compatible imitation of
/// criterion's).
pub struct Criterion {
    smoke: bool,
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo runs `harness = false` targets with `--test` under
        // `cargo test`; honor it like real criterion does. An explicit
        // env var lets CI force quick mode under `cargo bench` too.
        let smoke = std::env::args().any(|a| a == "--test")
            || std::env::var_os("CRITERION_SMOKE").is_some();
        Criterion { smoke, budget: Duration::from_millis(25) }
    }
}

impl Criterion {
    /// Override the wall-clock measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.budget = d;
        self
    }

    /// Accepted for API compatibility; the shim is budget-based.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run a single benchmark.
    pub fn bench_function<N, F>(&mut self, id: N, mut f: F) -> &mut Self
    where
        N: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into_id(), self.smoke, self.budget, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group<N: IntoBenchmarkId>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into_id(),
            smoke: self.smoke,
            budget: self.budget,
            _marker: std::marker::PhantomData,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    smoke: bool,
    budget: Duration,
    // tie the group to the Criterion borrow like the real API does
    _marker: std::marker::PhantomData<&'a mut Criterion>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for API compatibility; the shim is budget-based.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Override the wall-clock measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.budget = d;
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<N, F>(&mut self, id: N, mut f: F) -> &mut Self
    where
        N: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_id());
        run_one(&label, self.smoke, self.budget, &mut f);
        self
    }

    /// Run one parameterized benchmark inside the group.
    pub fn bench_with_input<N, I, F>(&mut self, id: N, input: &I, mut f: F) -> &mut Self
    where
        N: IntoBenchmarkId,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_id());
        run_one(&label, self.smoke, self.budget, &mut |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Define a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define `main` to run the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion { smoke: false, budget: Duration::from_millis(2) };
        let mut calls = 0u64;
        c.bench_function("calls", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
        let mut g = c.benchmark_group("g");
        g.sample_size(10)
            .bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
        g.finish();
    }

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion { smoke: true, budget: Duration::from_millis(100) };
        let mut calls = 0u64;
        c.bench_function("once", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
        c.bench_function("batched", |b| {
            b.iter_batched(|| 3u64, |x| x * 2, BatchSize::LargeInput)
        });
    }
}
