//! A warm [`Session::run`] timestep performs **zero heap allocations**.
//!
//! The plan cache keeps a preallocated `PlanWorkspace` per compiled plan,
//! the compressed schedules replay with `copy_from_slice` block moves and
//! slice kernels, and the per-statement analyses come back as `Arc`
//! handles into the frozen plans — so once the first timestep has
//! populated the cache, later timesteps touch no allocator at all. This
//! test pins that contract with a counting global allocator.
//!
//! Kept as its own integration binary so no concurrently running test can
//! pollute the counter between the snapshots.

// The workspace denies unsafe code; a `#[global_allocator]` is the one
// thing that cannot be written without it, so this test opts out locally.
#![allow(unsafe_code)]

use hpf::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocator entry point (allocations and reallocations —
/// frees are irrelevant to the contract) on top of the system allocator.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the only addition is a relaxed
// counter bump, which cannot violate the GlobalAlloc contract.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The test harness runs `#[test]`s concurrently; the counter is global,
/// so each test holds this lock across its measurement window.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// A 2-statement iterated program: a 2-D 5-point-flavored stencil sweep
/// plus a 1-D-sectioned copy-back, over block-distributed arrays on a
/// 2 × 2 grid — the `b12`/`b13` warm-replay shape.
fn stencil_program() -> Program {
    let n = 24i64;
    let np = 4usize;
    let mut ds = DataSpace::new(np);
    ds.declare_processors("G", IndexDomain::of_shape(&[2, 2]).unwrap()).unwrap();
    let p = ds.declare("P", IndexDomain::standard(&[(1, n), (1, n)]).unwrap()).unwrap();
    let u = ds.declare("U", IndexDomain::standard(&[(1, n), (1, n)]).unwrap()).unwrap();
    for id in [p, u] {
        ds.distribute(
            id,
            &DistributeSpec::to(vec![FormatSpec::Block, FormatSpec::Block], "G"),
        )
        .unwrap();
    }
    let mut prog = Program::new(vec![
        DistArray::new("P", ds.effective(p).unwrap(), np, 0.0),
        DistArray::from_fn("U", ds.effective(u).unwrap(), np, |i| {
            (i[0] * 100 + i[1]) as f64
        }),
    ]);
    let doms: Vec<&IndexDomain> = prog.arrays.iter().map(|a| a.domain()).collect();
    let sweep = Assignment::new(
        0,
        Section::from_triplets(vec![span(2, n - 1), span(2, n - 1)]),
        vec![
            Term::new(1, Section::from_triplets(vec![span(1, n - 2), span(2, n - 1)])),
            Term::new(1, Section::from_triplets(vec![span(3, n), span(2, n - 1)])),
            Term::new(1, Section::from_triplets(vec![span(2, n - 1), span(1, n - 2)])),
            Term::new(1, Section::from_triplets(vec![span(2, n - 1), span(3, n)])),
        ],
        Combine::Sum,
        &doms,
    )
    .unwrap();
    let copy_back = Assignment::new(
        1,
        Section::from_triplets(vec![span(2, n - 1), span(2, n - 1)]),
        vec![Term::new(0, Section::from_triplets(vec![span(2, n - 1), span(2, n - 1)]))],
        Combine::Copy,
        &doms,
    )
    .unwrap();
    prog.push(sweep).unwrap();
    prog.push(copy_back).unwrap();
    prog
}

#[test]
fn warm_session_run_allocates_nothing() {
    let _serial = SERIAL.lock().unwrap();
    let mut sess = Session::new(stencil_program()).threads(1);
    // cold timesteps: inspection, workspace construction, result-buffer
    // growth — all allocation happens here
    sess.run(2).unwrap();
    assert_eq!(sess.program().cache_misses(), 2, "one inspection per statement");

    // warm timesteps: zero heap allocations, several in a row — the
    // session's own bookkeeping must stay plain field updates
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..5 {
        sess.run(1).unwrap();
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "warm Session::run must not touch the heap ({} allocations in 5 timesteps)",
        after - before
    );

    // the replays were real work, not an optimized-out no-op
    assert_eq!(sess.program().cache_hits(), 2 + 5 * 2);
    let analyses = sess.last_analyses();
    assert_eq!(analyses.len(), 2);
    assert!(analyses[0].remote_reads > 0, "the stencil communicates");
}

#[test]
fn warm_parallel_run_reuses_spmd_workers() {
    let _serial = SERIAL.lock().unwrap();
    let mut sess = Session::new(stencil_program()).threads(4);
    // cold parallel timesteps: plan inspection plus the one-time spawn of
    // the persistent SPMD worker fleet (one worker per simulated processor)
    sess.run(2).unwrap();
    assert_eq!(sess.program().spmd_workers_spawned(), 4, "the fleet spawns exactly once");

    let before = ALLOCS.load(Ordering::Relaxed);
    let timesteps = 5u64;
    sess.run(timesteps).unwrap();
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        sess.program().spmd_workers_spawned(),
        4,
        "warm parallel timesteps must reuse the persistent workers, not respawn"
    );
    // Unlike the old scoped-thread executor (two spawn waves per statement
    // per timestep), a warm superstep only pays bounded channel traffic:
    // command/done handoffs and recycled message buffers. Pin that the
    // per-timestep allocation count stays a small constant — far below
    // what per-timestep thread spawning plus workspace rebuilds would cost.
    let per_timestep = (after - before) / timesteps;
    assert!(
        per_timestep < 600,
        "a warm parallel session allocates {per_timestep} times per timestep — \
         persistent workers should keep this a small constant"
    );

    // the replays were real work with real exchange on the wire
    assert!(sess.program().backend_bytes_sent() > 0);
    let analyses = sess.last_analyses();
    assert_eq!(analyses.len(), 2);
    assert!(analyses[0].remote_reads > 0, "the stencil communicates");
}

#[test]
fn warm_cache_replay_allocates_nothing() {
    let _serial = SERIAL.lock().unwrap();
    // the same contract one level down: PlanCache::replay_seq on a hit
    let mut prog = stencil_program();
    let mut arrays = std::mem::take(&mut prog.arrays);
    let doms: Vec<&IndexDomain> = arrays.iter().map(|a| a.domain()).collect();
    let n = 24i64;
    let stmt = Assignment::new(
        0,
        Section::from_triplets(vec![span(2, n - 1), span(2, n - 1)]),
        vec![Term::new(1, Section::from_triplets(vec![span(1, n - 2), span(2, n - 1)]))],
        Combine::Copy,
        &doms,
    )
    .unwrap();
    let mut cache = PlanCache::new();
    cache.replay_seq(&mut arrays, &stmt).unwrap();

    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..3 {
        cache.replay_seq(&mut arrays, &stmt).unwrap();
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(after - before, 0, "warm replay_seq must not allocate");
    assert_eq!((cache.hits(), cache.misses()), (3, 1));
}
