//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Length specifications accepted by [`vec()`]: an exact `usize`, `a..b`,
/// or `a..=b`.
pub trait SizeRange {
    /// Sample a length.
    fn sample_len(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn sample_len(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty length range");
        self.start + rng.below(self.end - self.start)
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        assert!(self.start() <= self.end(), "empty length range");
        self.start() + rng.below(self.end() - self.start() + 1)
    }
}

/// A strategy producing `Vec`s of values from an element strategy.
pub struct VecStrategy<S, L> {
    element: S,
    len: L,
}

impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;
    fn pick(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.sample_len(rng);
        (0..n).map(|_| self.element.pick(rng)).collect()
    }
}

/// `prop::collection::vec(element, len)`.
pub fn vec<S, L>(element: S, len: L) -> VecStrategy<S, L>
where
    S: Strategy,
    S::Value: Debug,
    L: SizeRange,
{
    VecStrategy { element, len }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn exact_and_ranged_lengths() {
        let mut r = TestRng::for_test("collection");
        let fixed = vec(0u32..8, 5usize);
        for _ in 0..50 {
            let v = fixed.pick(&mut r);
            assert_eq!(v.len(), 5);
            assert!(v.iter().all(|&x| x < 8));
        }
        let ranged = vec(0i64..3, 1..40usize);
        for _ in 0..100 {
            let v = ranged.pick(&mut r);
            assert!((1..40).contains(&v.len()));
        }
    }
}
