//! # hpf-frontend — the directive sub-language
//!
//! A lexer, parser and elaborator for the language the paper defines: the
//! Fortran-90 declaration subset plus the `!HPF$` directives `PROCESSORS`,
//! `DISTRIBUTE`, `REDISTRIBUTE`, `ALIGN`, `REALIGN` and `DYNAMIC`, the
//! `ALLOCATE`/`DEALLOCATE` statements of §6, and the `CALL`/`SUBROUTINE`
//! machinery of §7 (including the `DISTRIBUTE A *` inheritance forms).
//!
//! There is — deliberately — **no `TEMPLATE` directive**: parsing one
//! produces [`FrontendError::TemplateDirective`] with the §8 rewrite
//! guidance. That is the paper's thesis as a compiler diagnostic.
//!
//! ```
//! use hpf_frontend::Elaborator;
//! use hpf_index::Idx;
//!
//! let program = r#"
//!       PROGRAM DEMO
//!       PARAMETER (N = 16)
//!       REAL A(N), B(N)
//! !HPF$ PROCESSORS P(4)
//! !HPF$ DISTRIBUTE B(CYCLIC) TO P
//! !HPF$ ALIGN A(I) WITH B(N+1-I)
//!       END
//! "#;
//! let elab = Elaborator::new(4).run(program).unwrap();
//! let a = elab.array("A").unwrap();
//! let b = elab.array("B").unwrap();
//! // the collocation guarantee: A(I) lives with B(N+1-I)
//! assert_eq!(
//!     elab.space.owners(a, &Idx::d1(1)).unwrap(),
//!     elab.space.owners(b, &Idx::d1(16)).unwrap(),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
mod elaborate;
mod error;
mod eval;
mod lexer;
pub mod lower;
mod parser;
mod report;
mod token;

pub use elaborate::{Elaboration, Elaborator};
pub use error::FrontendError;
pub use eval::Env;
pub use lexer::{lex, lex_recover};
pub use lower::{LoweredProgram, Lowerer};
pub use parser::{parse, parse_recover};
pub use report::{
    render_diagnostics, AssignEvent, ElaborationReport, Event, FillEvent, SourceDiagnostic,
};
pub use token::{Span, Spanned, Tok};
