//! §8 executable: everything the template model can express, the paper's
//! model expresses too (with identical owner maps) — and the two §8.2
//! failure modes of templates do not afflict the template-free model.

use hpf::prelude::*;
use proptest::prelude::*;

fn fmt_of(k: u8) -> FormatSpec {
    match k {
        0 => FormatSpec::Block,
        1 => FormatSpec::Cyclic(1),
        2 => FormatSpec::Cyclic(3),
        _ => FormatSpec::BlockBalanced,
    }
}

/// Any single-array-aligned-to-template program rewrites into the
/// template-free model by replacing the template with a same-shape array
/// (the "natural template"), preserving every owner.
#[test]
fn natural_templates_suffice_for_single_alignment() {
    for (a, c) in [(1i64, 0i64), (2, -1), (2, 0), (3, 2)] {
        let n = 16i64;
        let base_n = a * n + c.max(0) + 4;
        // template model
        let mut tm = TemplateModel::new(4);
        let t = tm.template("T", IndexDomain::standard(&[(1, base_n)]).unwrap()).unwrap();
        let arr = tm.array("A", IndexDomain::standard(&[(1, n)]).unwrap()).unwrap();
        tm.align(arr, t, &AlignSpec::with_exprs(1, vec![AlignExpr::dummy(0) * a + c]))
            .unwrap();
        tm.distribute(t, &DistributeSpec::new(vec![FormatSpec::Cyclic(3)])).unwrap();
        // template-free: T becomes a real array with the same shape
        let mut ds = DataSpace::new(4);
        let tb = ds.declare("TB", IndexDomain::standard(&[(1, base_n)]).unwrap()).unwrap();
        let ar = ds.declare("A", IndexDomain::standard(&[(1, n)]).unwrap()).unwrap();
        ds.distribute(tb, &DistributeSpec::new(vec![FormatSpec::Cyclic(3)])).unwrap();
        ds.align(ar, tb, &AlignSpec::with_exprs(1, vec![AlignExpr::dummy(0) * a + c]))
            .unwrap();
        for i in 1..=n {
            assert_eq!(
                tm.owners(arr, &Idx::d1(i)).unwrap(),
                ds.owners(ar, &Idx::d1(i)).unwrap(),
                "a={a} c={c} i={i}"
            );
        }
    }
}

/// Height-2 template chains flatten into the height-1 forest by composing
/// the alignments, preserving owners.
#[test]
fn chains_flatten_to_height_one() {
    let n = 12i64;
    // template model: A → B → T, with B(I) ↦ T(2I), A(I) ↦ B(I+2)
    let mut tm = TemplateModel::new(4);
    let t = tm.template("T", IndexDomain::standard(&[(1, 40)]).unwrap()).unwrap();
    let b = tm.array("B", IndexDomain::standard(&[(1, 18)]).unwrap()).unwrap();
    let a = tm.array("A", IndexDomain::standard(&[(1, n)]).unwrap()).unwrap();
    tm.align(b, t, &AlignSpec::with_exprs(1, vec![AlignExpr::dummy(0) * 2])).unwrap();
    tm.align(a, b, &AlignSpec::with_exprs(1, vec![AlignExpr::dummy(0) + 2])).unwrap();
    tm.distribute(t, &DistributeSpec::new(vec![FormatSpec::Block])).unwrap();
    assert_eq!(tm.ultimate_target(a), (t, 2));

    // paper's model: composed alignment A(I) ↦ TB(2(I+2)) directly, height 1
    let mut ds = DataSpace::new(4);
    let tb = ds.declare("TB", IndexDomain::standard(&[(1, 40)]).unwrap()).unwrap();
    let ar = ds.declare("A", IndexDomain::standard(&[(1, n)]).unwrap()).unwrap();
    ds.distribute(tb, &DistributeSpec::new(vec![FormatSpec::Block])).unwrap();
    ds.align(
        ar,
        tb,
        &AlignSpec::with_exprs(1, vec![(AlignExpr::dummy(0) + 2) * 2]),
    )
    .unwrap();
    for i in 1..=n {
        assert_eq!(
            tm.owners(a, &Idx::d1(i)).unwrap(),
            ds.owners(ar, &Idx::d1(i)).unwrap(),
            "i={i}"
        );
    }
}

/// §8.2(1): templates cannot be allocatable — but the model's arrays can,
/// with directives propagated to every allocation (§6).
#[test]
fn allocatable_gap() {
    let mut tm = TemplateModel::new(4);
    assert!(matches!(
        tm.allocatable_template("T"),
        Err(TemplateError::TemplateNotAllocatable(_))
    ));

    // the template-free model handles the same need directly
    let mut ds = DataSpace::new(4);
    let w = ds.declare_allocatable("W", 1).unwrap();
    ds.distribute(w, &DistributeSpec::new(vec![FormatSpec::Cyclic(1)])).unwrap();
    for n in [10usize, 30, 7] {
        ds.allocate(w, IndexDomain::of_shape(&[n]).unwrap()).unwrap();
        assert_eq!(
            ds.owners(w, &Idx::d1(2)).unwrap(),
            ProcSet::One(ProcId(2)),
            "n={n}"
        );
        ds.deallocate(w).unwrap();
    }
}

/// §8.2(2): template-rooted mappings cannot be described across procedure
/// boundaries; array-rooted (and inherited) mappings can.
#[test]
fn procedure_boundary_gap() {
    let mut tm = TemplateModel::new(4);
    let t = tm.template("T", IndexDomain::of_shape(&[100]).unwrap()).unwrap();
    let a = tm.array("A", IndexDomain::of_shape(&[100]).unwrap()).unwrap();
    tm.align(a, t, &AlignSpec::identity(1)).unwrap();
    tm.distribute(t, &DistributeSpec::new(vec![FormatSpec::Cyclic(3)])).unwrap();
    assert!(matches!(
        tm.describe_in_procedure(a, "SUB"),
        Err(TemplateError::TemplateNotVisibleInProcedure { .. })
    ));

    // paper's model: the dummy's mapping is an attribute of the dummy
    let mut ds = DataSpace::new(4);
    let ar = ds.declare("A", IndexDomain::of_shape(&[100]).unwrap()).unwrap();
    ds.distribute(ar, &DistributeSpec::new(vec![FormatSpec::Cyclic(3)])).unwrap();
    let def = ProcedureDef::new("SUB", vec![Dummy::new("X", DummySpec::Inherit)]);
    let frame = CallFrame::enter(
        &ds,
        &def,
        &[Actual::section(ar, Section::from_triplets(vec![triplet(2, 96, 2)]))],
    )
    .unwrap();
    let x = frame.dummy(0);
    // fully describable inside the procedure: kind, owners, regions
    let eff = frame.local().effective(x).unwrap();
    assert_eq!(
        hpf::core::inquiry::mapping_kind(&eff),
        hpf::core::inquiry::MappingKind::Inherited
    );
    let hist = hpf::core::inquiry::ownership_histogram(frame.local(), x).unwrap();
    assert_eq!(hist.iter().map(|&(_, n)| n).sum::<usize>(), 48);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Model equivalence on random affine alignments to a (natural)
    /// template: template resolution and height-1 CONSTRUCT agree
    /// everywhere.
    #[test]
    fn models_agree_on_affine_alignments(
        fmt in 0..4u8,
        a in 1..3i64,
        c in 0..6i64,
        n in 4..24i64)
    {
        let base_n = a * n + c + 2;
        let mut tm = TemplateModel::new(4);
        let t = tm.template("T", IndexDomain::standard(&[(1, base_n)]).unwrap()).unwrap();
        let arr = tm.array("A", IndexDomain::standard(&[(1, n)]).unwrap()).unwrap();
        tm.align(arr, t, &AlignSpec::with_exprs(1, vec![AlignExpr::dummy(0) * a + c])).unwrap();
        tm.distribute(t, &DistributeSpec::new(vec![fmt_of(fmt)])).unwrap();

        let mut ds = DataSpace::new(4);
        let tb = ds.declare("TB", IndexDomain::standard(&[(1, base_n)]).unwrap()).unwrap();
        let ar = ds.declare("A", IndexDomain::standard(&[(1, n)]).unwrap()).unwrap();
        ds.distribute(tb, &DistributeSpec::new(vec![fmt_of(fmt)])).unwrap();
        ds.align(ar, tb, &AlignSpec::with_exprs(1, vec![AlignExpr::dummy(0) * a + c])).unwrap();

        for i in 1..=n {
            prop_assert_eq!(
                tm.owners(arr, &Idx::d1(i)).unwrap(),
                ds.owners(ar, &Idx::d1(i)).unwrap()
            );
        }
        // owned regions agree too
        for p in 1..=4u32 {
            let r1 = tm.owned_region(arr, ProcId(p)).unwrap();
            let r2 = ds.owned_region(ar, ProcId(p)).unwrap();
            for i in 1..=n {
                prop_assert_eq!(r1.contains(&Idx::d1(i)), r2.contains(&Idx::d1(i)));
            }
        }
    }
}
