//! `hpfrun` — the end-to-end pipeline driver.
//!
//! Reads a Fortran-with-`!HPF$`-directives source file, elaborates the
//! directives and statements, lowers them into a runtime
//! [`Program`](hpf_runtime::Program) over
//! distributed storage, and executes timesteps through the fused-plan
//! machinery on the selected exchange backend.
//!
//! ```text
//! hpfrun FILE.hpf [--np N] [--steps N] [--backend shared-mem|channels]
//!                 [--threads N] [--set NAME=VALUE]... [--verify] [--stats]
//! ```
//!
//! All frontend and lowering problems are reported together, rendered
//! against the source with spans — one run shows every defect.
//!
//! Example:
//! ```text
//! cargo run -p hpf-frontend --bin hpfrun -- examples/programs/quickstart.hpf \
//!     --backend channels --steps 10 --verify --stats
//! ```

use hpf_frontend::{render_diagnostics, Elaborator, Lowerer};
use hpf_runtime::Backend;
use std::process::ExitCode;

struct Args {
    file: String,
    np: usize,
    steps: usize,
    backend: Backend,
    threads: usize,
    sets: Vec<(String, i64)>,
    verify: bool,
    stats: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: hpfrun FILE [--np N] [--steps N] [--backend shared-mem|channels]\n\
         \x20             [--threads N] [--set NAME=VALUE]... [--verify] [--stats]\n\
         \n\
         elaborates FILE over N abstract processors (default 4), lowers the\n\
         statements into a runtime program, and executes N timesteps\n\
         (default 1) through the fused-plan path.\n\
         --backend    exchange backend (default shared-mem); `channels` runs\n\
         \x20            the message-passing SPMD worker fleet\n\
         --threads    cap the shared-mem parallel executor's worker count\n\
         --set        provide PARAMETER/READ inputs\n\
         --verify     statically verify every compiled plan, then check the\n\
         \x20            distributed result element-for-element against the\n\
         \x20            dense oracle\n\
         --stats      print plan-cache, fusion, and wire-traffic statistics"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        file: String::new(),
        np: 4,
        steps: 1,
        backend: Backend::SharedMem,
        threads: 1,
        sets: Vec::new(),
        verify: false,
        stats: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--np" => {
                args.np = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--steps" => {
                args.steps =
                    it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--threads" => {
                args.threads =
                    it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--backend" => match it.next().as_deref() {
                Some("shared-mem") => args.backend = Backend::SharedMem,
                Some("channels") => args.backend = Backend::Channels,
                _ => usage(),
            },
            "--set" => {
                let kv = it.next().unwrap_or_else(|| usage());
                let (k, v) = kv.split_once('=').unwrap_or_else(|| usage());
                let v: i64 = v.parse().unwrap_or_else(|_| usage());
                args.sets.push((k.to_string(), v));
            }
            "--verify" => args.verify = true,
            "--stats" => args.stats = true,
            "--help" | "-h" => usage(),
            f if args.file.is_empty() && !f.starts_with('-') => args.file = f.to_string(),
            _ => usage(),
        }
    }
    if args.file.is_empty() {
        usage();
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let src = match std::fs::read_to_string(&args.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("hpfrun: cannot read {}: {e}", args.file);
            return ExitCode::FAILURE;
        }
    };

    // Front half: elaborate with recovery, then lower — accumulate every
    // diagnostic from both layers before giving up.
    let mut elab = Elaborator::new(args.np);
    for (k, v) in &args.sets {
        elab = elab.with_input(k, *v);
    }
    let (elaboration, mut diags) = elab.run_recover(&src);
    let (mut lowered, lower_diags) = Lowerer::lower(&elaboration);
    diags.extend(lower_diags);
    if !diags.is_empty() {
        eprint!("{}", render_diagnostics(&src, &diags));
        return ExitCode::FAILURE;
    }

    println!(
        "— lowered {}: {} array(s), {} statement(s), {} abstract processors —",
        args.file,
        lowered.names.len(),
        lowered.statements.len(),
        args.np
    );

    // Back half: verify (static plans + dense oracle) or just run.
    if args.verify {
        match lowered.program.verify_all() {
            Ok(report) => {
                if !report.is_clean() {
                    eprint!("{report}");
                    return ExitCode::FAILURE;
                }
                println!(
                    "verified: {} plan(s) proven safe before execution",
                    lowered.statements.len()
                );
            }
            Err(e) => {
                eprintln!("hpfrun: verification failed to compile plans: {e}");
                return ExitCode::FAILURE;
            }
        }
        if let Err(msg) = lowered.run_verified(args.steps, args.backend) {
            eprintln!("hpfrun: {msg}");
            return ExitCode::FAILURE;
        }
        println!(
            "verified: {} timestep(s) on {} match the dense oracle",
            args.steps,
            backend_name(args.backend)
        );
    } else {
        for _ in 0..args.steps {
            let r = if args.threads > 1 && args.backend == Backend::SharedMem {
                lowered.program.run_parallel(args.threads).map(|_| ())
            } else {
                lowered.program.run_on(args.backend).map(|_| ())
            };
            if let Err(e) = r {
                eprintln!("hpfrun: execution failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        println!("ran {} timestep(s) on {}", args.steps, backend_name(args.backend));
    }

    // Result digest: one line per array so runs are comparable.
    for (k, name) in lowered.names.iter().enumerate() {
        let dense = lowered.program.arrays[k].to_dense();
        let sum: f64 = dense.iter().sum();
        println!("  {name}: {} element(s), sum {sum}", dense.len());
    }

    if args.stats {
        let fs = lowered.program.fusion_stats();
        println!("— statistics —");
        println!(
            "  plan cache: {} hit(s), {} miss(es)",
            lowered.program.cache_hits(),
            lowered.program.cache_misses()
        );
        println!(
            "  fusion: {} superstep(s), {} message(s) coalesced to {}, \
             {} ghost byte(s) avoided",
            fs.supersteps,
            fs.messages_before,
            fs.messages_after,
            fs.ghost_bytes_avoided()
        );
        println!(
            "  wire: {} byte(s) sent, {} SPMD worker(s) spawned",
            lowered.program.backend_bytes_sent(),
            lowered.program.spmd_workers_spawned()
        );
    }
    ExitCode::SUCCESS
}

fn backend_name(b: Backend) -> &'static str {
    match b {
        Backend::SharedMem => "shared-mem",
        Backend::Channels => "channels",
    }
}
