//! Deterministic fault injection for the exchange backends.
//!
//! Fault tolerance that is only exercised by real hardware failures is
//! untested fault tolerance. A [`FaultPlan`] names exactly which failure
//! to provoke and *when* — kill worker `k` at superstep `s`, drop,
//! corrupt, or delay the `s→r` message of a superstep, poison the SPMD
//! buffer-pool lock — and [`crate::ExchangeBackend::inject`] arms it on a
//! backend. Every fault is **one-shot**: it fires the first time its step
//! comes around and never again, so a recovery that replays the same
//! steps from a checkpoint runs clean. Steps are counted per backend
//! (its cumulative superstep counter, starting at 0), making every
//! injection fully deterministic and therefore testable.
//!
//! The `Channels` backend injects faults physically: a killed worker's
//! thread really exits mid-fleet, a corrupted message really arrives
//! truncated at the receiver, a poisoned pool lock is really poisoned (a
//! sacrificial thread panics while holding it). The `SharedMem` backend
//! has no threads, wire, or locks, so it *simulates the detection
//! outcome* of each fault at the step boundary instead — same typed
//! [`crate::ExchangeError`]s, same recovery path, no arrays touched.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// One injectable failure. Ranks are zero-based; `step` is the target
/// backend's cumulative superstep counter at which the fault fires (the
/// first superstep a backend executes is step 0, and the fused program
/// path counts one step per timestep).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Worker `rank`'s thread exits the moment it receives the work order
    /// for `step` — shards in its custody are lost, exactly as a crashed
    /// process would lose them.
    KillWorker {
        /// Zero-based rank to kill.
        rank: u32,
        /// Superstep at which the worker dies.
        step: u64,
    },
    /// The `sender → receiver` message of `step` is silently discarded:
    /// the receiver waits for data that never arrives and the driver's
    /// step timeout reports the fleet wedged.
    DropMessage {
        /// Zero-based sending rank.
        sender: u32,
        /// Zero-based receiving rank.
        receiver: u32,
        /// Superstep whose message is dropped.
        step: u64,
    },
    /// The `sender → receiver` message of `step` arrives truncated by one
    /// element — the receiver's schedule length check detects it and
    /// reports a typed corruption error instead of unpacking garbage.
    CorruptMessage {
        /// Zero-based sending rank.
        sender: u32,
        /// Zero-based receiving rank.
        receiver: u32,
        /// Superstep whose message is damaged.
        step: u64,
    },
    /// The `sender → receiver` message of `step` is held back `millis`
    /// before shipping — a slow link, not a failure; the superstep must
    /// still complete (within the driver's step timeout).
    DelayMessage {
        /// Zero-based sending rank.
        sender: u32,
        /// Zero-based receiving rank.
        receiver: u32,
        /// Superstep whose message is delayed.
        step: u64,
        /// Delay in milliseconds.
        millis: u64,
    },
    /// Worker `rank` poisons the shared buffer-pool `Mutex` at `step` (a
    /// sacrificial thread panics while holding the guard). The pool
    /// accessors recover via `PoisonError::into_inner`, so one poisoned
    /// lock stays one fault instead of cascading into every worker.
    PoisonPool {
        /// Zero-based rank that poisons the pool.
        rank: u32,
        /// Superstep at which the lock is poisoned.
        step: u64,
    },
}

impl Fault {
    /// The superstep this fault is scheduled to fire at.
    pub fn step(&self) -> u64 {
        match *self {
            Fault::KillWorker { step, .. }
            | Fault::DropMessage { step, .. }
            | Fault::CorruptMessage { step, .. }
            | Fault::DelayMessage { step, .. }
            | Fault::PoisonPool { step, .. } => step,
        }
    }
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Fault::KillWorker { rank, step } => {
                write!(f, "kill rank {rank} at step {step}")
            }
            Fault::DropMessage { sender, receiver, step } => {
                write!(f, "drop {sender}→{receiver} at step {step}")
            }
            Fault::CorruptMessage { sender, receiver, step } => {
                write!(f, "corrupt {sender}→{receiver} at step {step}")
            }
            Fault::DelayMessage { sender, receiver, step, millis } => {
                write!(f, "delay {sender}→{receiver} at step {step} by {millis}ms")
            }
            Fault::PoisonPool { rank, step } => {
                write!(f, "poison pool from rank {rank} at step {step}")
            }
        }
    }
}

/// An ordered set of one-shot faults to arm on a backend via
/// [`crate::ExchangeBackend::inject`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (arms nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Append a fault (builder style).
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Append a fault.
    pub fn push(&mut self, fault: Fault) {
        self.faults.push(fault);
    }

    /// The planned faults, in arm order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Number of planned faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True iff the plan arms nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Parse an `--inject` specification: one or more faults separated by
    /// `;`, each `kind:key=value,...` with zero-based ranks —
    ///
    /// ```text
    /// kill:rank=1,step=2
    /// drop:from=0,to=2,step=3
    /// corrupt:from=0,to=1,step=1
    /// delay:from=0,to=1,step=1,ms=40
    /// poison:rank=0,step=2
    /// ```
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new();
        for part in spec.split(';').map(str::trim).filter(|p| !p.is_empty()) {
            plan.push(parse_fault(part)?);
        }
        if plan.is_empty() {
            return Err(format!("fault spec `{spec}` names no faults"));
        }
        Ok(plan)
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, fault) in self.faults.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{fault}")?;
        }
        Ok(())
    }
}

fn parse_fault(part: &str) -> Result<Fault, String> {
    let (kind, rest) = part
        .split_once(':')
        .ok_or_else(|| format!("fault `{part}`: expected `kind:key=value,...`"))?;
    let mut fields: Vec<(&str, u64)> = Vec::new();
    for kv in rest.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let (k, v) = kv
            .split_once('=')
            .ok_or_else(|| format!("fault `{part}`: `{kv}` is not `key=value`"))?;
        let v: u64 = v
            .trim()
            .parse()
            .map_err(|_| format!("fault `{part}`: `{v}` is not a number"))?;
        fields.push((k.trim(), v));
    }
    let get = |key: &str| -> Result<u64, String> {
        fields
            .iter()
            .find(|(k, _)| *k == key)
            .map(|&(_, v)| v)
            .ok_or_else(|| format!("fault `{part}`: missing `{key}=`"))
    };
    let known = |allowed: &[&str]| -> Result<(), String> {
        for (k, _) in &fields {
            if !allowed.contains(k) {
                return Err(format!("fault `{part}`: unknown key `{k}`"));
            }
        }
        Ok(())
    };
    match kind.trim() {
        "kill" => {
            known(&["rank", "step"])?;
            Ok(Fault::KillWorker { rank: get("rank")? as u32, step: get("step")? })
        }
        "drop" => {
            known(&["from", "to", "step"])?;
            Ok(Fault::DropMessage {
                sender: get("from")? as u32,
                receiver: get("to")? as u32,
                step: get("step")?,
            })
        }
        "corrupt" => {
            known(&["from", "to", "step"])?;
            Ok(Fault::CorruptMessage {
                sender: get("from")? as u32,
                receiver: get("to")? as u32,
                step: get("step")?,
            })
        }
        "delay" => {
            known(&["from", "to", "step", "ms"])?;
            Ok(Fault::DelayMessage {
                sender: get("from")? as u32,
                receiver: get("to")? as u32,
                step: get("step")?,
                millis: get("ms")?,
            })
        }
        "poison" => {
            known(&["rank", "step"])?;
            Ok(Fault::PoisonPool { rank: get("rank")? as u32, step: get("step")? })
        }
        other => Err(format!(
            "fault `{part}`: unknown kind `{other}` \
             (expected kill|drop|corrupt|delay|poison)"
        )),
    }
}

/// What the fault switch tells a sender to do with one outgoing message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SendAction {
    /// No fault matches: ship normally.
    Deliver,
    /// Discard the message (the receiver will wedge waiting for it).
    Drop,
    /// Truncate the payload by one element before shipping.
    Corrupt,
    /// Sleep this many milliseconds, then ship.
    Delay(u64),
}

/// The armed, shared form of a [`FaultPlan`]: workers and drivers consult
/// it at their fault points, and each fault is consumed exactly once.
/// Backends hold it as `Option<Arc<FaultSwitch>>`, so the disarmed hot
/// path pays one `Option` branch and never touches the mutex.
#[derive(Debug)]
pub(crate) struct FaultSwitch {
    slots: Mutex<Vec<(Fault, bool)>>,
    fired: AtomicUsize,
}

impl FaultSwitch {
    /// Arm a plan.
    pub(crate) fn arm(plan: FaultPlan) -> FaultSwitch {
        FaultSwitch {
            slots: Mutex::new(plan.faults.into_iter().map(|f| (f, false)).collect()),
            fired: AtomicUsize::new(0),
        }
    }

    /// Faults fired so far.
    pub(crate) fn fired(&self) -> usize {
        self.fired.load(Ordering::Relaxed)
    }

    fn consume(&self, matches: impl Fn(&Fault) -> bool) -> Option<Fault> {
        let mut slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        for (fault, fired) in slots.iter_mut() {
            if !*fired && matches(fault) {
                *fired = true;
                self.fired.fetch_add(1, Ordering::Relaxed);
                return Some(fault.clone());
            }
        }
        None
    }

    /// Consume a `KillWorker` scheduled for this rank and step.
    pub(crate) fn kill(&self, rank: u32, step: u64) -> bool {
        self.consume(|f| matches!(*f, Fault::KillWorker { rank: r, step: s } if r == rank && s == step))
            .is_some()
    }

    /// Consume a `PoisonPool` scheduled for this rank and step.
    pub(crate) fn poison(&self, rank: u32, step: u64) -> bool {
        self.consume(|f| matches!(*f, Fault::PoisonPool { rank: r, step: s } if r == rank && s == step))
            .is_some()
    }

    /// Consume a message fault scheduled for this `sender → receiver`
    /// message at this step, if any.
    pub(crate) fn on_send(&self, sender: u32, receiver: u32, step: u64) -> SendAction {
        let hit = self.consume(|f| match *f {
            Fault::DropMessage { sender: a, receiver: b, step: s }
            | Fault::CorruptMessage { sender: a, receiver: b, step: s }
            | Fault::DelayMessage { sender: a, receiver: b, step: s, .. } => {
                a == sender && b == receiver && s == step
            }
            _ => false,
        });
        match hit {
            None => SendAction::Deliver,
            Some(Fault::DropMessage { .. }) => SendAction::Drop,
            Some(Fault::CorruptMessage { .. }) => SendAction::Corrupt,
            Some(Fault::DelayMessage { millis, .. }) => SendAction::Delay(millis),
            Some(_) => SendAction::Deliver,
        }
    }

    /// Consume the next unfired fault scheduled for `step`, regardless of
    /// rank or pair — the `SharedMem` backend's whole-step simulation
    /// point (it has no per-worker or per-message fault sites).
    pub(crate) fn at_step(&self, step: u64) -> Option<Fault> {
        self.consume(|f| f.step() == step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_kind() {
        let plan = FaultPlan::parse(
            "kill:rank=1,step=2; drop:from=0,to=2,step=3;\
             corrupt:from=0,to=1,step=1;delay:from=0,to=1,step=1,ms=40;\
             poison:rank=0,step=2",
        )
        .unwrap();
        assert_eq!(plan.len(), 5);
        assert_eq!(plan.faults()[0], Fault::KillWorker { rank: 1, step: 2 });
        assert_eq!(
            plan.faults()[3],
            Fault::DelayMessage { sender: 0, receiver: 1, step: 1, millis: 40 }
        );
        assert!(plan.to_string().contains("kill rank 1 at step 2"));
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "",
            "explode:rank=1,step=0",
            "kill:rank=1",
            "kill:rank=x,step=0",
            "kill:rank=1,step=0,extra=2",
            "drop:from=0,step=1",
            "kill",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn faults_fire_exactly_once() {
        let sw = FaultSwitch::arm(
            FaultPlan::new()
                .with(Fault::KillWorker { rank: 2, step: 5 })
                .with(Fault::CorruptMessage { sender: 0, receiver: 1, step: 3 }),
        );
        assert!(!sw.kill(2, 4), "wrong step must not fire");
        assert!(!sw.kill(1, 5), "wrong rank must not fire");
        assert!(sw.kill(2, 5));
        assert!(!sw.kill(2, 5), "one-shot: a replay of step 5 runs clean");
        assert_eq!(sw.on_send(0, 1, 2), SendAction::Deliver);
        assert_eq!(sw.on_send(0, 1, 3), SendAction::Corrupt);
        assert_eq!(sw.on_send(0, 1, 3), SendAction::Deliver, "consumed");
        assert_eq!(sw.fired(), 2);
    }

    #[test]
    fn shared_mem_step_scan_consumes_in_order() {
        let sw = FaultSwitch::arm(
            FaultPlan::new()
                .with(Fault::DelayMessage { sender: 0, receiver: 1, step: 1, millis: 5 })
                .with(Fault::KillWorker { rank: 0, step: 1 }),
        );
        assert!(sw.at_step(0).is_none());
        assert!(matches!(sw.at_step(1), Some(Fault::DelayMessage { .. })));
        assert!(matches!(sw.at_step(1), Some(Fault::KillWorker { .. })));
        assert!(sw.at_step(1).is_none());
    }
}
