use std::fmt;

/// Errors raised when declaring or querying processor arrangements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProcsError {
    /// An arrangement name was declared twice in the same processor space.
    DuplicateName(String),
    /// The named arrangement does not exist.
    UnknownArrangement(String),
    /// The arrangement (at its equivalence offset) does not fit in AP.
    DoesNotFitAp {
        /// Arrangement name.
        name: String,
        /// Equivalence offset into AP (0-based).
        offset: usize,
        /// Number of abstract processors the arrangement needs.
        size: usize,
        /// Total abstract processors available.
        ap: usize,
    },
    /// A processor arrangement must have a non-empty index domain (§3).
    EmptyArrangement(String),
    /// An index was outside an arrangement's index domain.
    BadProcessorIndex(String),
    /// A section was invalid for the arrangement it targets.
    BadSection(String),
    /// An operation required an array arrangement but got a scalar one.
    ScalarArrangement(String),
}

impl fmt::Display for ProcsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProcsError::DuplicateName(n) => {
                write!(f, "processor arrangement `{n}` declared twice")
            }
            ProcsError::UnknownArrangement(n) => {
                write!(f, "unknown processor arrangement `{n}`")
            }
            ProcsError::DoesNotFitAp { name, offset, size, ap } => write!(
                f,
                "arrangement `{name}` needs {size} abstract processors at offset {offset}, \
                 but AP has only {ap}"
            ),
            ProcsError::EmptyArrangement(n) => {
                write!(f, "processor arrangement `{n}` must have a non-empty index domain (§3)")
            }
            ProcsError::BadProcessorIndex(n) => {
                write!(f, "index out of bounds for processor arrangement `{n}`")
            }
            ProcsError::BadSection(n) => {
                write!(f, "invalid section of processor arrangement `{n}`")
            }
            ProcsError::ScalarArrangement(n) => {
                write!(f, "arrangement `{n}` is conceptually scalar and has no index domain")
            }
        }
    }
}

impl std::error::Error for ProcsError {}
