use hpf_core::HpfError;
use std::fmt;

/// Errors from the directive-language front end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrontendError {
    /// Lexical error.
    Lex {
        /// Source line.
        line: usize,
        /// Description.
        what: String,
    },
    /// Syntax error.
    Parse {
        /// Source line.
        line: usize,
        /// Description.
        what: String,
    },
    /// The input used an HPF `TEMPLATE` directive — deliberately not part
    /// of this language ("we present a model [...] without the use of
    /// templates"). The §8-guided rewrite hint is part of the message.
    TemplateDirective {
        /// Source line.
        line: usize,
    },
    /// A name was used before being declared.
    Undeclared {
        /// Source line.
        line: usize,
        /// The name.
        name: String,
    },
    /// An unknown parameter was referenced in a specification expression.
    UnknownParameter(String),
    /// A specification expression could not be evaluated.
    Eval(String),
    /// Semantic error from the mapping model.
    Semantic(HpfError),
    /// A `READ` statement needed a value not supplied to the elaborator.
    MissingInput(String),
    /// A `CALL` referenced an unknown subroutine.
    UnknownSubroutine(String),
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontendError::Lex { line, what } => write!(f, "line {line}: {what}"),
            FrontendError::Parse { line, what } => write!(f, "line {line}: {what}"),
            FrontendError::TemplateDirective { line } => write!(
                f,
                "line {line}: TEMPLATE directives are not part of this model — \
                 align arrays to each other, or distribute them directly (paper §8: \
                 \"natural templates are sufficient to describe all features related \
                 to distribution and alignment\")"
            ),
            FrontendError::Undeclared { line, name } => {
                write!(f, "line {line}: `{name}` used before declaration")
            }
            FrontendError::UnknownParameter(n) => write!(f, "unknown parameter `{n}`"),
            FrontendError::Eval(e) => write!(f, "specification expression: {e}"),
            FrontendError::Semantic(e) => write!(f, "{e}"),
            FrontendError::MissingInput(n) => {
                write!(f, "READ needs a value for `{n}` (pass it via with_input)")
            }
            FrontendError::UnknownSubroutine(n) => write!(f, "unknown subroutine `{n}`"),
        }
    }
}

impl std::error::Error for FrontendError {}

impl From<HpfError> for FrontendError {
    fn from(e: HpfError) -> Self {
        FrontendError::Semantic(e)
    }
}
