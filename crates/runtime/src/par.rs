use crate::assign::Assignment;
use crate::backend::ExchangeBackend;
use crate::commsets::CommAnalysis;
use crate::plan::ExecPlan;
use crate::workspace::PlanWorkspace;
use crate::DistArray;
use hpf_core::HpfError;

/// Parallel owner-computes executor: a thin driver over the same compiled
/// [`ExecPlan`] the sequential executor replays, with both the pack and
/// compute phases spread over real threads (crossbeam scoped threads), one
/// simulated processor's buffers per unit of work — the same decomposition
/// a real SPMD node program would have.
///
/// The effective thread count is capped at the simulated processor count
/// at execution time (spawning 16 OS threads for `np = 4` would only pay
/// scope-setup cost), so `threads` is an upper bound, not a demand.
///
/// Produces bit-identical results to [`crate::SeqExecutor`] (verified by
/// the test suite): each simulated processor writes only its own local
/// buffer, and all operand reads come from the pre-packed exchange
/// buffers, exactly like a BSP superstep (communicate, then compute
/// locally).
#[derive(Debug, Clone, Copy)]
pub struct ParExecutor {
    /// Maximum number of OS threads to spread the simulated processors
    /// over (capped at the processor count per plan).
    pub threads: usize,
}

impl Default for ParExecutor {
    fn default() -> Self {
        ParExecutor {
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
        }
    }
}

impl ParExecutor {
    /// Execute with an explicit thread count.
    pub fn with_threads(threads: usize) -> Self {
        ParExecutor { threads: threads.max(1) }
    }

    /// Execute `stmt` over `arrays` (same semantics as
    /// [`crate::SeqExecutor::execute`]): inspect a fresh plan, replay it
    /// once with a parallel compute phase.
    pub fn execute(
        &self,
        arrays: &mut [DistArray<f64>],
        stmt: &Assignment,
    ) -> Result<CommAnalysis, HpfError> {
        let plan = ExecPlan::inspect(arrays, stmt)?;
        // With the `verify` feature, even uncached one-shot plans are
        // statically proven safe before the parallel replay (cached plans
        // are covered by the PlanCache insertion hook).
        #[cfg(feature = "verify")]
        {
            let report = crate::verify::verify_plan(arrays, stmt, &plan);
            assert!(report.is_clean(), "statically invalid plan:\n{report}");
        }
        plan.execute_par(arrays, self.threads);
        Ok(plan.analysis().clone())
    }

    /// Replay an already-inspected plan with parallel pack and compute
    /// phases. Allocates a throwaway workspace; hot loops should use
    /// [`ParExecutor::execute_plan_with`].
    ///
    /// # Panics
    /// Panics if `plan` is stale for `arrays` (see
    /// [`ExecPlan::is_valid_for`]).
    pub fn execute_plan(&self, arrays: &mut [DistArray<f64>], plan: &ExecPlan) {
        plan.execute_par(arrays, self.threads);
    }

    /// Replay an already-inspected plan into a reusable
    /// [`PlanWorkspace`] — no per-replay buffer allocation (the scoped
    /// thread spawns are the only setup cost).
    ///
    /// # Panics
    /// Panics if `plan` is stale for `arrays` (see
    /// [`ExecPlan::is_valid_for`]).
    pub fn execute_plan_with(
        &self,
        arrays: &mut [DistArray<f64>],
        plan: &ExecPlan,
        ws: &mut PlanWorkspace,
    ) {
        plan.execute_par_with(arrays, self.threads, ws);
    }

    /// Execute `stmt` through an explicit [`ExchangeBackend`] (one fresh
    /// inspection, one superstep). The backend decides the execution
    /// shape — with a [`ChannelsBackend`](crate::ChannelsBackend) this
    /// *is* parallel execution (one worker per simulated processor,
    /// `self.threads` does not apply) without the per-call scoped-thread
    /// spawn waves of [`ParExecutor::execute`]; iterated timesteps should
    /// hold the backend (its workers persist) and replay through a
    /// [`crate::PlanCache`]. Identical to
    /// [`SeqExecutor::execute_on`](crate::SeqExecutor::execute_on), to
    /// which it delegates.
    pub fn execute_on(
        &self,
        arrays: &mut [DistArray<f64>],
        stmt: &Assignment,
        backend: &mut dyn ExchangeBackend,
    ) -> Result<CommAnalysis, HpfError> {
        crate::SeqExecutor.execute_on(arrays, stmt, backend)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::{Combine, Term};
    use crate::exec::{dense_reference, SeqExecutor};
    use hpf_core::{DataSpace, DistributeSpec, FormatSpec};
    use hpf_index::{span, triplet, IndexDomain, Section};

    fn arrays_2d(n: usize, np_side: usize) -> Vec<DistArray<f64>> {
        let np = np_side * np_side;
        let mut ds = DataSpace::new(np);
        ds.declare_processors("G", IndexDomain::of_shape(&[np_side, np_side]).unwrap())
            .unwrap();
        let mut out = Vec::new();
        for name in ["P", "U"] {
            let id = ds
                .declare(name, IndexDomain::of_shape(&[n, n]).unwrap())
                .unwrap();
            ds.distribute(
                id,
                &DistributeSpec::to(vec![FormatSpec::Block, FormatSpec::Block], "G"),
            )
            .unwrap();
            out.push(DistArray::from_fn(name, ds.effective(id).unwrap(), np, |i| {
                (i[0] * 1000 + i[1]) as f64
            }));
        }
        out
    }

    #[test]
    fn parallel_matches_sequential_1d() {
        let build = || {
            let mut ds = DataSpace::new(4);
            let a = ds.declare("A", IndexDomain::of_shape(&[64]).unwrap()).unwrap();
            let b = ds.declare("B", IndexDomain::of_shape(&[64]).unwrap()).unwrap();
            ds.distribute(a, &DistributeSpec::new(vec![FormatSpec::Block])).unwrap();
            ds.distribute(b, &DistributeSpec::new(vec![FormatSpec::Cyclic(3)])).unwrap();
            vec![
                DistArray::from_fn("A", ds.effective(a).unwrap(), 4, |i| i[0] as f64),
                DistArray::from_fn("B", ds.effective(b).unwrap(), 4, |i| (i[0] * 7) as f64),
            ]
        };
        let doms_owner = build();
        let doms: Vec<&IndexDomain> = doms_owner.iter().map(|a| a.domain()).collect();
        let stmt = Assignment::new(
            0,
            Section::from_triplets(vec![span(1, 32)]),
            vec![
                Term::new(1, Section::from_triplets(vec![triplet(2, 64, 2)])),
                Term::new(0, Section::from_triplets(vec![span(33, 64)])),
            ],
            Combine::Sum,
            &doms,
        )
        .unwrap();
        let mut seq = build();
        let mut par = build();
        let a1 = SeqExecutor.execute(&mut seq, &stmt).unwrap();
        let a2 = ParExecutor::with_threads(3).execute(&mut par, &stmt).unwrap();
        assert_eq!(seq[0].to_dense(), par[0].to_dense());
        assert_eq!(a1.comm, a2.comm);
    }

    #[test]
    fn parallel_matches_reference_2d_stencil() {
        let n = 16;
        let mut arrays = arrays_2d(n, 2);
        let doms: Vec<&IndexDomain> = arrays.iter().map(|a| a.domain()).collect();
        // P(2:N-1, 2:N-1) = U(1:N-2, 2:N-1) + U(3:N, 2:N-1)
        let ni = n as i64;
        let stmt = Assignment::new(
            0,
            Section::from_triplets(vec![span(2, ni - 1), span(2, ni - 1)]),
            vec![
                Term::new(1, Section::from_triplets(vec![span(1, ni - 2), span(2, ni - 1)])),
                Term::new(1, Section::from_triplets(vec![span(3, ni), span(2, ni - 1)])),
            ],
            Combine::Sum,
            &doms,
        )
        .unwrap();
        let expect = dense_reference(&arrays, &stmt);
        ParExecutor::default().execute(&mut arrays, &stmt).unwrap();
        assert_eq!(arrays[0].to_dense(), expect);
    }

    #[test]
    fn single_thread_degenerate() {
        let mut arrays = arrays_2d(8, 2);
        let doms: Vec<&IndexDomain> = arrays.iter().map(|a| a.domain()).collect();
        let stmt = Assignment::new(
            0,
            Section::from_triplets(vec![span(1, 8), span(1, 8)]),
            vec![Term::new(1, Section::from_triplets(vec![span(1, 8), span(1, 8)]))],
            Combine::Copy,
            &doms,
        )
        .unwrap();
        let expect = dense_reference(&arrays, &stmt);
        ParExecutor::with_threads(1).execute(&mut arrays, &stmt).unwrap();
        assert_eq!(arrays[0].to_dense(), expect);
    }

    #[test]
    fn parallel_plan_replay_matches_seq_replay() {
        let mut seq = arrays_2d(12, 2);
        let mut par = arrays_2d(12, 2);
        let doms: Vec<&IndexDomain> = seq.iter().map(|a| a.domain()).collect();
        let stmt = Assignment::new(
            0,
            Section::from_triplets(vec![span(2, 11), span(1, 12)]),
            vec![
                Term::new(1, Section::from_triplets(vec![span(1, 10), span(1, 12)])),
                Term::new(1, Section::from_triplets(vec![span(3, 12), span(1, 12)])),
            ],
            Combine::Average,
            &doms,
        )
        .unwrap();
        let plan_seq = ExecPlan::inspect(&seq, &stmt).unwrap();
        let plan_par = ExecPlan::inspect(&par, &stmt).unwrap();
        for _ in 0..3 {
            SeqExecutor.execute_plan(&mut seq, &plan_seq);
            ParExecutor::with_threads(4).execute_plan(&mut par, &plan_par);
        }
        assert_eq!(seq[0].to_dense(), par[0].to_dense());
    }
}
