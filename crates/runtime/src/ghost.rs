//! Ghost-region (overlap) analysis — the SUPERB-style overlap areas the
//! paper's reference [11] pioneered: for each processor and each operand,
//! the exact set of non-local elements the statement reads, as a region.
//!
//! A compiler materializes these as "overlap areas" around the local
//! segment; their volume is the per-processor receive buffer size, and
//! their shape tells whether a simple ghost-cell exchange suffices
//! (contiguous faces) or general gather is needed (strided sets).

use crate::assign::Assignment;
use crate::commsets::{embed_region, project_region};
use hpf_core::EffectiveDist;
use hpf_index::Region;
use hpf_procs::ProcId;
use std::sync::Arc;

/// The overlap picture of one processor for one statement.
#[derive(Debug, Clone)]
pub struct GhostReport {
    /// The processor.
    pub proc: ProcId,
    /// Per RHS term: the region of that operand read but not owned.
    pub per_term: Vec<Region>,
    /// Total non-local elements to receive.
    pub volume: usize,
}

/// Compute each processor's ghost regions for `stmt` under the
/// owner-computes rule. `mappings[k]` is the mapping of array `k`.
///
/// Exact for partitioned mappings (the usual case); the ghost region of a
/// replicated operand is empty on processors holding a copy.
pub fn ghost_regions(
    mappings: &[Arc<EffectiveDist>],
    np: usize,
    stmt: &Assignment,
) -> Vec<GhostReport> {
    let mut out = Vec::with_capacity(np);
    for p in 1..=np as u32 {
        let p = ProcId(p);
        let lhs_owned = mappings[stmt.lhs].owned_region(p);
        let positions = project_region(&lhs_owned, &stmt.lhs_section);
        let mut per_term = Vec::with_capacity(stmt.terms.len());
        let mut volume = 0usize;
        for term in &stmt.terms {
            let reads = embed_region(&positions, &term.section);
            // ghost = reads ∩ (⋃_{q≠p} owned_q) — computed per remote owner
            let rank = reads.rank();
            let mut ghost = Region::empty(rank);
            for q in 1..=np as u32 {
                if q == p.0 {
                    continue;
                }
                let owned_q = mappings[term.array].owned_region(ProcId(q));
                for rect in reads.intersect(&owned_q).expect("same rank").rects() {
                    ghost.push(rect.clone());
                }
            }
            volume += ghost.volume_disjoint();
            per_term.push(ghost);
        }
        out.push(GhostReport { proc: p, per_term, volume });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::{Combine, Term};
    use hpf_core::{DataSpace, DistributeSpec, FormatSpec};
    use hpf_index::{span, Idx, IndexDomain, Section};

    /// 1-D BLOCK shift: each interior processor needs exactly one ghost
    /// element from its left neighbour.
    #[test]
    fn block_shift_ghosts() {
        let (n, np) = (64usize, 4usize);
        let mut ds = DataSpace::new(np);
        let a = ds.declare("A", IndexDomain::of_shape(&[n]).unwrap()).unwrap();
        ds.distribute(a, &DistributeSpec::new(vec![FormatSpec::Block])).unwrap();
        let map = ds.effective(a).unwrap();
        let doms = vec![map.domain()];
        // A(2:N) = A(1:N-1)
        let stmt = Assignment::new(
            0,
            Section::from_triplets(vec![span(2, n as i64)]),
            vec![Term::new(0, Section::from_triplets(vec![span(1, n as i64 - 1)]))],
            Combine::Copy,
            &doms,
        )
        .unwrap();
        let ghosts = ghost_regions(&[map], np, &stmt);
        // P1 needs nothing; P2..P4 need exactly A(16), A(32), A(48)
        assert_eq!(ghosts[0].volume, 0);
        for (k, g) in ghosts.iter().enumerate().skip(1) {
            assert_eq!(g.volume, 1, "P{}", k + 1);
            let boundary = (k * 16) as i64;
            assert!(g.per_term[0].contains(&Idx::d1(boundary)));
        }
    }

    /// 2-D BLOCK×BLOCK 4-point stencil: ghost volume is one mesh face per
    /// neighbour, and the regions are contiguous faces.
    #[test]
    fn mesh_face_ghosts() {
        let n = 16i64;
        let np = 4usize;
        let mut ds = DataSpace::new(np);
        ds.declare_processors("G", IndexDomain::of_shape(&[2, 2]).unwrap()).unwrap();
        let p = ds.declare("P", IndexDomain::standard(&[(1, n), (1, n)]).unwrap()).unwrap();
        let u = ds.declare("U", IndexDomain::standard(&[(1, n), (1, n)]).unwrap()).unwrap();
        for id in [p, u] {
            ds.distribute(
                id,
                &DistributeSpec::to(vec![FormatSpec::Block, FormatSpec::Block], "G"),
            )
            .unwrap();
        }
        let maps = vec![ds.effective(p).unwrap(), ds.effective(u).unwrap()];
        let doms: Vec<&IndexDomain> = maps.iter().map(|m| m.domain()).collect();
        // P(2:N-1,:) = U(1:N-2,:) + U(3:N,:)
        let stmt = Assignment::new(
            0,
            Section::from_triplets(vec![span(2, n - 1), span(1, n)]),
            vec![
                Term::new(1, Section::from_triplets(vec![span(1, n - 2), span(1, n)])),
                Term::new(1, Section::from_triplets(vec![span(3, n), span(1, n)])),
            ],
            Combine::Sum,
            &doms,
        )
        .unwrap();
        let ghosts = ghost_regions(&maps, np, &stmt);
        // every processor needs one 8-wide face from its vertical neighbour
        for g in &ghosts {
            assert_eq!(g.volume, 8, "{}", g.proc);
        }
        // ghost volumes must equal the comm analysis's remote reads
        let analysis = crate::comm_analysis(&maps, np, &stmt);
        let total: usize = ghosts.iter().map(|g| g.volume).sum();
        assert_eq!(total as u64, analysis.remote_reads);
    }

    /// CYCLIC operand: the ghost region is strided (no contiguous face) —
    /// the shape information a compiler needs to pick gather over shift.
    #[test]
    fn cyclic_ghosts_are_strided() {
        let (n, np) = (24usize, 3usize);
        let mut ds = DataSpace::new(np);
        let a = ds.declare("A", IndexDomain::of_shape(&[n]).unwrap()).unwrap();
        let b = ds.declare("B", IndexDomain::of_shape(&[n]).unwrap()).unwrap();
        ds.distribute(a, &DistributeSpec::new(vec![FormatSpec::Block])).unwrap();
        ds.distribute(b, &DistributeSpec::new(vec![FormatSpec::Cyclic(1)])).unwrap();
        let maps = vec![ds.effective(a).unwrap(), ds.effective(b).unwrap()];
        let doms: Vec<&IndexDomain> = maps.iter().map(|m| m.domain()).collect();
        let stmt = Assignment::new(
            0,
            Section::from_triplets(vec![span(1, n as i64)]),
            vec![Term::new(1, Section::from_triplets(vec![span(1, n as i64)]))],
            Combine::Copy,
            &doms,
        )
        .unwrap();
        let ghosts = ghost_regions(&maps, np, &stmt);
        // P1 computes A(1:8) and owns B(1,4,7,...); it reads B(1:8), of
        // which 2,3,5,6,8 are remote
        assert_eq!(ghosts[0].volume, 5);
        let g = &ghosts[0].per_term[0];
        assert!(g.contains(&Idx::d1(2)));
        assert!(!g.contains(&Idx::d1(4)));
    }
}
