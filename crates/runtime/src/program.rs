//! Multi-statement execution: a sequence of array assignments over a
//! shared set of distributed arrays, with cumulative communication and
//! load statistics — the unit the E-series experiments price on the
//! machine model.
//!
//! `Program::run` executes through a [`PlanCache`]: each statement is
//! inspected into an [`crate::ExecPlan`] the first time it runs and
//! replayed from the cache on every later timestep, so iterated solvers
//! pay inspection (ownership lookups, comm analysis) once, and O(elements
//! moved + computed) per iteration. Warm [`Program::run`] timesteps are
//! **allocation-free**: the cache replays each plan into its own
//! preallocated [`crate::PlanWorkspace`], the per-statement analyses come
//! back as `Arc` handles into the frozen plans, and the result buffer is
//! reused across calls (asserted by the `zero_alloc_replay` integration
//! test). [`Program::run_parallel`] reuses the same workspaces but pays
//! scoped-thread spawn cost (and its allocations) per timestep. Remapping
//! an array (see [`Program::remap`]) changes its mapping identity and
//! invalidates exactly the plans that involve it.

use crate::assign::Assignment;
use crate::cache::PlanCache;
use crate::commsets::CommAnalysis;
use crate::remap::{remap_analysis, RemapAnalysis};
use crate::DistArray;
use hpf_core::{EffectiveDist, HpfError};
use hpf_machine::{CommStats, Machine, SuperstepReport};
use std::sync::Arc;

/// A program: distributed arrays plus an ordered statement list. Each
/// statement executes as one BSP superstep (exchange, then compute).
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// The arrays, referenced by position from the statements.
    pub arrays: Vec<DistArray<f64>>,
    stmts: Vec<Assignment>,
    cache: PlanCache,
    /// Reused per-run analysis handles — retains its capacity so warm
    /// timesteps push into it without allocating.
    last: Vec<Arc<CommAnalysis>>,
}

impl Program {
    /// Create over a set of arrays.
    pub fn new(arrays: Vec<DistArray<f64>>) -> Self {
        Program { arrays, stmts: Vec::new(), cache: PlanCache::new(), last: Vec::new() }
    }

    /// Append a statement (validated against the arrays' domains).
    pub fn push(&mut self, stmt: Assignment) -> Result<(), HpfError> {
        let doms: Vec<&hpf_index::IndexDomain> =
            self.arrays.iter().map(|a| a.domain()).collect();
        stmt.validate(&doms)?;
        self.stmts.push(stmt);
        Ok(())
    }

    /// Number of statements.
    pub fn len(&self) -> usize {
        self.stmts.len()
    }

    /// True iff no statements were added.
    pub fn is_empty(&self) -> bool {
        self.stmts.is_empty()
    }

    /// Execute every statement in order with the sequential executor,
    /// returning the per-statement analyses (shared handles into the
    /// frozen plans). Plans are cached: repeated calls replay compiled
    /// schedules instead of re-inspecting, and a fully-warm call performs
    /// **zero heap allocations** — block-copy pack into cached workspaces,
    /// slice-kernel compute, `Arc` bumps for the analyses.
    pub fn run(&mut self) -> Result<&[Arc<CommAnalysis>], HpfError> {
        self.last.clear();
        self.last.reserve(self.stmts.len()); // no-op once warmed
        for stmt in &self.stmts {
            let analysis = self.cache.replay_seq(&mut self.arrays, stmt)?;
            self.last.push(analysis);
        }
        Ok(&self.last)
    }

    /// Execute in order with pack and compute phases spread over at most
    /// `threads` OS threads (same plan cache, same semantics as
    /// [`Program::run`]).
    pub fn run_parallel(
        &mut self,
        threads: usize,
    ) -> Result<&[Arc<CommAnalysis>], HpfError> {
        self.last.clear();
        self.last.reserve(self.stmts.len());
        for stmt in &self.stmts {
            let analysis = self.cache.replay_par(&mut self.arrays, stmt, threads)?;
            self.last.push(analysis);
        }
        Ok(&self.last)
    }

    /// The analyses of the most recent [`Program::run`] /
    /// [`Program::run_parallel`] call.
    pub fn last_analyses(&self) -> &[Arc<CommAnalysis>] {
        &self.last
    }

    /// Remap array `k` onto a new mapping: move every element value into
    /// storage laid out by `new`, return the exact traffic of the move,
    /// and (by replacing the mapping allocation) invalidate every cached
    /// plan that involves the array.
    pub fn remap(
        &mut self,
        k: usize,
        new: Arc<EffectiveDist>,
    ) -> Result<RemapAnalysis, HpfError> {
        let old = self
            .arrays
            .get(k)
            .ok_or_else(|| HpfError::UnknownArray(format!("array #{k}")))?;
        if old.domain() != new.domain() {
            return Err(HpfError::NotConforming(format!(
                "remap of `{}` changes its index domain",
                old.name()
            )));
        }
        let np = old.np();
        let analysis = remap_analysis(old.mapping(), &new, np);
        let moved = DistArray::from_fn(old.name(), new, np, |i| old.get(i));
        self.arrays[k] = moved;
        Ok(analysis)
    }

    /// Cached-plan replays performed so far.
    pub fn cache_hits(&self) -> u64 {
        self.cache.hits()
    }

    /// Fresh plan inspections performed so far (cold + invalidated).
    pub fn cache_misses(&self) -> u64 {
        self.cache.misses()
    }

    /// Drop all cached plans (they will be re-inspected on the next run).
    pub fn clear_plan_cache(&mut self) {
        self.cache.clear();
    }

    /// Bytes held by the compressed schedules of every cached plan.
    pub fn plan_schedule_bytes(&self) -> usize {
        self.cache.schedule_bytes()
    }

    /// Price a set of per-statement analyses on a machine: the sum of the
    /// per-superstep estimates plus the merged traffic matrix. Accepts
    /// both owned analyses and the shared handles [`Program::run`]
    /// returns.
    pub fn price<A: std::borrow::Borrow<CommAnalysis>>(
        analyses: &[A],
        machine: &Machine,
    ) -> (f64, CommStats, Vec<SuperstepReport>) {
        let mut total = 0.0;
        let mut traffic = CommStats::new();
        let mut reports = Vec::with_capacity(analyses.len());
        for a in analyses {
            let a = a.borrow();
            let rep = machine.superstep_time(&a.loads, &a.comm);
            total += rep.total_time();
            traffic.merge(&a.comm);
            reports.push(rep);
        }
        (total, traffic, reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::{Combine, Term};
    use crate::exec::dense_reference;
    use hpf_core::{DataSpace, DistributeSpec, FormatSpec};
    use hpf_index::{span, IndexDomain, Section};

    fn setup() -> Program {
        let np = 4;
        let mut ds = DataSpace::new(np);
        let a = ds.declare("A", IndexDomain::of_shape(&[32]).unwrap()).unwrap();
        let b = ds.declare("B", IndexDomain::of_shape(&[32]).unwrap()).unwrap();
        ds.distribute(a, &DistributeSpec::new(vec![FormatSpec::Block])).unwrap();
        ds.distribute(b, &DistributeSpec::new(vec![FormatSpec::Cyclic(1)])).unwrap();
        Program::new(vec![
            DistArray::from_fn("A", ds.effective(a).unwrap(), np, |i| i[0] as f64),
            DistArray::from_fn("B", ds.effective(b).unwrap(), np, |i| (i[0] * 2) as f64),
        ])
    }

    fn full(n: i64) -> Section {
        Section::from_triplets(vec![span(1, n)])
    }

    #[test]
    fn sequences_compose() {
        let mut prog = setup();
        let doms: Vec<&IndexDomain> = prog.arrays.iter().map(|a| a.domain()).collect();
        // A = B; then B = A + B (reads the updated A)
        let s1 = Assignment::new(
            0,
            full(32),
            vec![Term::new(1, full(32))],
            Combine::Copy,
            &doms,
        )
        .unwrap();
        let s2 = Assignment::new(
            1,
            full(32),
            vec![Term::new(0, full(32)), Term::new(1, full(32))],
            Combine::Sum,
            &doms,
        )
        .unwrap();
        prog.push(s1).unwrap();
        prog.push(s2).unwrap();
        assert_eq!(prog.len(), 2);
        let analyses = prog.run().unwrap();
        assert_eq!(analyses.len(), 2);
        // A = B = 2i; then B = A + B = 4i
        for i in 1..=32i64 {
            assert_eq!(prog.arrays[0].get(&hpf_index::Idx::d1(i)), (2 * i) as f64);
            assert_eq!(prog.arrays[1].get(&hpf_index::Idx::d1(i)), (4 * i) as f64);
        }
    }

    #[test]
    fn parallel_run_matches_sequential() {
        let build_stmts = |prog: &mut Program| {
            let doms: Vec<&IndexDomain> = prog.arrays.iter().map(|a| a.domain()).collect();
            let s1 = Assignment::new(
                0,
                Section::from_triplets(vec![span(2, 32)]),
                vec![Term::new(1, Section::from_triplets(vec![span(1, 31)]))],
                Combine::Copy,
                &doms,
            )
            .unwrap();
            let s2 = Assignment::new(
                1,
                full(32),
                vec![Term::new(0, full(32))],
                Combine::Copy,
                &doms,
            )
            .unwrap();
            prog.push(s1).unwrap();
            prog.push(s2).unwrap();
        };
        let mut seq = setup();
        build_stmts(&mut seq);
        let mut par = setup();
        build_stmts(&mut par);
        seq.run().unwrap();
        par.run_parallel(3).unwrap();
        assert_eq!(seq.arrays[0].to_dense(), par.arrays[0].to_dense());
        assert_eq!(seq.arrays[1].to_dense(), par.arrays[1].to_dense());
    }

    #[test]
    fn pricing_accumulates() {
        let mut prog = setup();
        let doms: Vec<&IndexDomain> = prog.arrays.iter().map(|a| a.domain()).collect();
        let s = Assignment::new(
            0,
            full(32),
            vec![Term::new(1, full(32))],
            Combine::Copy,
            &doms,
        )
        .unwrap();
        prog.push(s.clone()).unwrap();
        prog.push(s).unwrap();
        let analyses = prog.run().unwrap();
        let machine = Machine::simple(4);
        let (total, traffic, reports) = Program::price(analyses, &machine);
        assert_eq!(reports.len(), 2);
        assert!((total - (reports[0].total_time() + reports[1].total_time())).abs() < 1e-9);
        assert_eq!(
            traffic.total_elements(),
            analyses[0].comm.total_elements() + analyses[1].comm.total_elements()
        );
    }

    #[test]
    fn invalid_statement_rejected() {
        let mut prog = setup();
        let doms: Vec<&IndexDomain> = prog.arrays.iter().map(|a| a.domain()).collect();
        let bad = Assignment::new(
            0,
            full(32),
            vec![Term::new(1, full(16))],
            Combine::Copy,
            &doms,
        );
        assert!(bad.is_err());
        // rank mismatch detected at push-time too
        let half = Assignment {
            lhs: 0,
            lhs_section: full(32),
            terms: vec![Term::new(1, full(16))],
            combine: Combine::Copy,
        };
        assert!(prog.push(half).is_err());
    }

    #[test]
    fn dense_reference_still_oracle() {
        let mut prog = setup();
        let doms: Vec<&IndexDomain> = prog.arrays.iter().map(|a| a.domain()).collect();
        let s = Assignment::new(
            0,
            Section::from_triplets(vec![span(1, 16)]),
            vec![Term::new(1, Section::from_triplets(vec![hpf_index::triplet(2, 32, 2)]))],
            Combine::Copy,
            &doms,
        )
        .unwrap();
        let expect = dense_reference(&prog.arrays, &s);
        prog.push(s).unwrap();
        prog.run().unwrap();
        assert_eq!(prog.arrays[0].to_dense(), expect);
    }

    #[test]
    fn timesteps_amortize_inspection() {
        // the acceptance-criterion counter: 1 cold miss, then pure hits
        let mut prog = setup();
        let doms: Vec<&IndexDomain> = prog.arrays.iter().map(|a| a.domain()).collect();
        let sweep = Assignment::new(
            0,
            Section::from_triplets(vec![span(2, 32)]),
            vec![
                Term::new(0, Section::from_triplets(vec![span(1, 31)])),
                Term::new(1, Section::from_triplets(vec![span(2, 32)])),
            ],
            Combine::Sum,
            &doms,
        )
        .unwrap();
        prog.push(sweep).unwrap();
        let timesteps = 10u64;
        for _ in 0..timesteps {
            prog.run().unwrap();
        }
        assert_eq!(prog.cache_misses(), 1, "exactly one inspection");
        assert_eq!(prog.cache_hits(), timesteps - 1, "every later timestep replays");
    }

    #[test]
    fn remap_moves_values_and_invalidates_plans() {
        let mut prog = setup();
        let doms: Vec<&IndexDomain> = prog.arrays.iter().map(|a| a.domain()).collect();
        let s = Assignment::new(
            0,
            full(32),
            vec![Term::new(1, full(32))],
            Combine::Copy,
            &doms,
        )
        .unwrap();
        prog.push(s).unwrap();
        prog.run().unwrap();
        prog.run().unwrap();
        assert_eq!((prog.cache_hits(), prog.cache_misses()), (1, 1));

        // REDISTRIBUTE B: BLOCK now — values survive, plans invalidate
        let mut ds = DataSpace::new(4);
        let b = ds.declare("B", IndexDomain::of_shape(&[32]).unwrap()).unwrap();
        ds.distribute(b, &DistributeSpec::new(vec![FormatSpec::Block])).unwrap();
        let before = prog.arrays[1].to_dense();
        let r = prog.remap(1, ds.effective(b).unwrap()).unwrap();
        assert_eq!(prog.arrays[1].to_dense(), before, "values must survive the move");
        assert!(r.moved > 0, "BLOCK ↔ CYCLIC moves most elements");

        prog.run().unwrap();
        assert_eq!(prog.cache_misses(), 2, "remap forces re-inspection");
        prog.run().unwrap();
        assert_eq!(prog.cache_hits(), 2, "and the fresh plan is reused again");
    }

    #[test]
    fn remap_rejects_domain_change() {
        let mut prog = setup();
        let mut ds = DataSpace::new(4);
        let b = ds.declare("B", IndexDomain::of_shape(&[16]).unwrap()).unwrap();
        ds.distribute(b, &DistributeSpec::new(vec![FormatSpec::Block])).unwrap();
        assert!(prog.remap(1, ds.effective(b).unwrap()).is_err());
        assert!(prog.remap(9, prog.arrays[0].mapping().clone()).is_err());
    }
}
