//! `hpfrun` — the end-to-end pipeline driver.
//!
//! Reads a Fortran-with-`!HPF$`-directives source file, elaborates the
//! directives and statements, lowers them into a runtime
//! [`Program`](hpf_runtime::Program) over
//! distributed storage, and executes timesteps through the fused-plan
//! machinery on the selected exchange backend.
//!
//! ```text
//! hpfrun FILE.hpf [--np N] [--steps N] [--backend shared-mem|channels]
//!                 [--threads N] [--set NAME=VALUE]... [--verify] [--stats]
//!                 [--adapt] [--checkpoint-dir D] [--checkpoint-every N]
//!                 [--resume] [--inject SPEC]... [--step-timeout-ms N]
//! ```
//!
//! All frontend and lowering problems are reported together, rendered
//! against the source with spans — one run shows every defect.
//!
//! Execution is driven through a [`hpf_runtime::Session`]: with
//! `--checkpoint-dir` the session writes distributed snapshots on a
//! cadence, and on an exchange fault (injected via `--inject` or real)
//! performs restore-and-replay recovery with bounded retries.
//! `--resume` restores the newest snapshot first and runs only the
//! remaining timesteps — even under a different `--np` or distribution
//! than the checkpoint was written with. `--adapt` arms the adaptive
//! redistribution controller: between timesteps it watches the
//! measured per-rank load, prices candidate remappings on the machine
//! model, and redistributes live when a remap pays for itself.
//!
//! Example:
//! ```text
//! cargo run -p hpf-frontend --bin hpfrun -- examples/programs/quickstart.hpf \
//!     --backend channels --steps 10 --verify --stats
//! ```

use hpf_frontend::{render_diagnostics, Elaborator, Lowerer};
use hpf_runtime::{AdaptPolicy, Backend, CheckpointSpec, FaultPlan, Session};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    file: String,
    np: usize,
    steps: usize,
    backend: Backend,
    threads: usize,
    sets: Vec<(String, i64)>,
    verify: bool,
    stats: bool,
    adapt: bool,
    checkpoint_dir: Option<PathBuf>,
    checkpoint_every: u64,
    resume: bool,
    inject: Vec<String>,
    step_timeout_ms: Option<u64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: hpfrun FILE [--np N] [--steps N] [--backend shared-mem|channels]\n\
         \x20             [--threads N] [--set NAME=VALUE]... [--verify] [--stats]\n\
         \n\
         elaborates FILE over N abstract processors (default 4), lowers the\n\
         statements into a runtime program, and executes N timesteps\n\
         (default 1) through the fused-plan path.\n\
         --backend    exchange backend (default shared-mem); `channels` runs\n\
         \x20            the message-passing SPMD worker fleet\n\
         --threads    cap the shared-mem parallel executor's worker count\n\
         --set        provide PARAMETER/READ inputs\n\
         --verify     statically verify every compiled plan, then check the\n\
         \x20            distributed result element-for-element against the\n\
         \x20            dense oracle\n\
         --stats      print plan-cache, fusion, and wire-traffic statistics\n\
         --adapt      adaptive redistribution: watch measured per-rank load\n\
         \x20            and remap live when a rebalance pays for itself\n\
         --checkpoint-dir D   run fault-tolerantly, snapshotting distributed\n\
         \x20            state into D (restore-and-replay on exchange faults)\n\
         --checkpoint-every N checkpoint cadence in timesteps (default 1;\n\
         \x20            0 = only the baseline and final snapshots)\n\
         --resume     restore the newest checkpoint under D first and run\n\
         \x20            only the remaining timesteps (any --np/distribution)\n\
         --inject SPEC        arm deterministic fault injection, e.g.\n\
         \x20            'kill:rank=1,step=2' or 'drop:from=0,to=2,step=1';\n\
         \x20            repeatable\n\
         --step-timeout-ms N  channels wedge-detection timeout"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        file: String::new(),
        np: 4,
        steps: 1,
        backend: Backend::SharedMem,
        threads: 1,
        sets: Vec::new(),
        verify: false,
        stats: false,
        adapt: false,
        checkpoint_dir: None,
        checkpoint_every: 1,
        resume: false,
        inject: Vec::new(),
        step_timeout_ms: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--np" => {
                args.np = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--steps" => {
                args.steps =
                    it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--threads" => {
                args.threads =
                    it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--backend" => match it.next().as_deref() {
                Some("shared-mem") => args.backend = Backend::SharedMem,
                Some("channels") => args.backend = Backend::Channels,
                _ => usage(),
            },
            "--set" => {
                let kv = it.next().unwrap_or_else(|| usage());
                let (k, v) = kv.split_once('=').unwrap_or_else(|| usage());
                let v: i64 = v.parse().unwrap_or_else(|_| usage());
                args.sets.push((k.to_string(), v));
            }
            "--verify" => args.verify = true,
            "--stats" => args.stats = true,
            "--adapt" => args.adapt = true,
            "--checkpoint-dir" => {
                args.checkpoint_dir = Some(PathBuf::from(it.next().unwrap_or_else(|| usage())))
            }
            "--checkpoint-every" => {
                args.checkpoint_every =
                    it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--resume" => args.resume = true,
            "--inject" => args.inject.push(it.next().unwrap_or_else(|| usage())),
            "--step-timeout-ms" => {
                args.step_timeout_ms =
                    Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()))
            }
            "--help" | "-h" => usage(),
            f if args.file.is_empty() && !f.starts_with('-') => args.file = f.to_string(),
            _ => usage(),
        }
    }
    if args.file.is_empty() {
        usage();
    }
    if args.resume && args.checkpoint_dir.is_none() {
        eprintln!("hpfrun: --resume requires --checkpoint-dir");
        usage();
    }
    if args.verify && args.adapt {
        eprintln!("hpfrun: --verify runs the static pipeline; adaptive remaps are exercised without it (the controller's equivalence is pinned by the test suite)");
        usage();
    }
    if args.verify && (args.resume || args.checkpoint_dir.is_some()) {
        eprintln!("hpfrun: --verify compares against the dense oracle of the *initial* values; it cannot be combined with --checkpoint-dir/--resume");
        usage();
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let src = match std::fs::read_to_string(&args.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("hpfrun: cannot read {}: {e}", args.file);
            return ExitCode::FAILURE;
        }
    };

    // Front half: elaborate with recovery, then lower — accumulate every
    // diagnostic from both layers before giving up.
    let mut elab = Elaborator::new(args.np);
    for (k, v) in &args.sets {
        elab = elab.with_input(k, *v);
    }
    let (elaboration, mut diags) = elab.run_recover(&src);
    let (mut lowered, lower_diags) = Lowerer::lower(&elaboration);
    diags.extend(lower_diags);
    if !diags.is_empty() {
        eprint!("{}", render_diagnostics(&src, &diags));
        return ExitCode::FAILURE;
    }

    println!(
        "— lowered {}: {} array(s), {} statement(s), {} abstract processors —",
        args.file,
        lowered.names.len(),
        lowered.statements.len(),
        args.np
    );

    // Fault tolerance knobs: armed before anything executes.
    if !args.inject.is_empty() {
        match FaultPlan::parse(&args.inject.join("; ")) {
            Ok(plan) => lowered.program.inject_faults(plan),
            Err(e) => {
                eprintln!("hpfrun: bad --inject spec: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(ms) = args.step_timeout_ms {
        lowered.program.set_exchange_timeout(Duration::from_millis(ms));
    }

    // Back half: verify (static plans + dense oracle) or just run.
    if args.verify {
        match lowered.program.verify_all() {
            Ok(report) => {
                if !report.is_clean() {
                    eprint!("{report}");
                    return ExitCode::FAILURE;
                }
                println!(
                    "verified: {} plan(s) proven safe before execution",
                    lowered.statements.len()
                );
            }
            Err(e) => {
                eprintln!("hpfrun: verification failed to compile plans: {e}");
                return ExitCode::FAILURE;
            }
        }
        if let Err(msg) = lowered.run_verified(args.steps, args.backend) {
            eprintln!("hpfrun: {msg}");
            return ExitCode::FAILURE;
        }
        println!(
            "verified: {} timestep(s) on {} match the dense oracle",
            args.steps,
            backend_name(args.backend)
        );
    } else {
        // Everything else is one Session: backend, thread bound,
        // checkpoint cadence + recovery, and adaptive redistribution.
        let mut session = Session::new(lowered.program).backend(args.backend);
        if args.threads > 1 && args.backend == Backend::SharedMem {
            session = session.threads(args.threads);
        }
        if args.adapt {
            session = session.adapt(AdaptPolicy::default());
        }
        let mut start = 0u64;
        if let Some(dir) = &args.checkpoint_dir {
            if args.resume {
                match session.program_mut().restore_latest(Path::new(dir)) {
                    Ok(r) => {
                        println!(
                            "resumed from checkpoint at timestep {} ({} array(s), {})",
                            r.timestep,
                            r.arrays,
                            if r.remapped > 0 {
                                "scattered into the current distribution"
                            } else {
                                "fast path"
                            }
                        );
                        start = r.timestep;
                    }
                    Err(e) => {
                        eprintln!("hpfrun: resume failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            session = session.checkpoint(CheckpointSpec::new(dir, args.checkpoint_every));
        }
        let remaining = (args.steps as u64).saturating_sub(start);
        match session.run(remaining) {
            Ok(rep) => {
                print!(
                    "ran {} timestep(s) on {}",
                    rep.timesteps,
                    backend_name(rep.final_backend)
                );
                if args.checkpoint_dir.is_some() {
                    print!(" — {} checkpoint(s) written", rep.checkpoints);
                }
                if rep.failures > 0 {
                    print!(
                        ", {} fault(s) survived, {} timestep(s) replayed",
                        rep.failures, rep.replayed
                    );
                }
                if rep.degraded {
                    print!(", degraded to shared-mem");
                }
                println!();
            }
            Err(e) => {
                eprintln!("hpfrun: execution failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        if args.adapt {
            if let Some(rep) = session.adapt_report() {
                println!(
                    "adaptive: {} remap(s), {} element(s) moved, last imbalance {:.2}",
                    rep.remaps, rep.remap_elements, rep.last_imbalance
                );
                for e in &rep.events {
                    println!(
                        "  t={}: {} -> {} (imbalance {:.2}, stay {:.1}us vs move {:.1}us+{:.1}us, predicted gain {:.1}us)",
                        e.timestep,
                        e.arrays.join(","),
                        e.candidate,
                        e.observed_imbalance,
                        e.cost_stay,
                        e.cost_candidate,
                        e.remap_cost,
                        e.predicted_gain
                    );
                }
            }
        }
        lowered.program = session.into_program();
    }

    // Result digest: one line per array so runs are comparable.
    for (k, name) in lowered.names.iter().enumerate() {
        let dense = lowered.program.arrays[k].to_dense();
        let sum: f64 = dense.iter().sum();
        println!("  {name}: {} element(s), sum {sum}", dense.len());
    }

    if args.stats {
        let fs = lowered.program.fusion_stats();
        println!("— statistics —");
        println!(
            "  plan cache: {} hit(s), {} miss(es)",
            lowered.program.cache_hits(),
            lowered.program.cache_misses()
        );
        println!(
            "  fusion: {} superstep(s), {} message(s) coalesced to {}, \
             {} ghost byte(s) avoided",
            fs.supersteps,
            fs.messages_before,
            fs.messages_after,
            fs.ghost_bytes_avoided()
        );
        println!(
            "  wire: {} byte(s) sent, {} SPMD worker(s) spawned",
            lowered.program.backend_bytes_sent(),
            lowered.program.spmd_workers_spawned()
        );
    }
    ExitCode::SUCCESS
}

fn backend_name(b: Backend) -> &'static str {
    match b {
        Backend::SharedMem => "shared-mem",
        Backend::Channels => "channels",
    }
}
